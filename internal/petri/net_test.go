package petri

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// twoStageRing builds a tiny marked-graph ring: t0 -> p0 -> t1 -> p1 -> t0
// with a token on p1.
func twoStageRing() *Net {
	n := New("ring2")
	t0 := n.AddTransition("t0")
	t1 := n.AddTransition("t1")
	p0 := n.AddPlace("p0", 0)
	p1 := n.AddPlace("p1", 1)
	n.ArcTP(t0, p0)
	n.ArcPT(p0, t1)
	n.ArcTP(t1, p1)
	n.ArcPT(p1, t0)
	return n
}

func TestTokenGameBasics(t *testing.T) {
	n := twoStageRing()
	m := n.InitialMarking()
	if !n.Enabled(m, 0) {
		t.Fatal("t0 should be enabled initially")
	}
	if n.Enabled(m, 1) {
		t.Fatal("t1 should be disabled initially")
	}
	m2 := n.Fire(m, 0)
	if m2[0] != 1 || m2[1] != 0 {
		t.Fatalf("after t0: got %v", m2)
	}
	if m[0] != 0 || m[1] != 1 {
		t.Fatalf("Fire must not mutate its argument: %v", m)
	}
	m3 := n.Fire(m2, 1)
	if !m3.Equal(m) {
		t.Fatalf("ring should return to initial marking, got %v", m3)
	}
}

func TestFireDisabledPanics(t *testing.T) {
	n := twoStageRing()
	defer func() {
		if recover() == nil {
			t.Fatal("firing a disabled transition must panic")
		}
	}()
	n.Fire(n.InitialMarking(), 1)
}

func TestFireUnfireRoundTrip(t *testing.T) {
	n := twoStageRing()
	m := n.InitialMarking()
	orig := m.Clone()
	n.FireInPlace(m, 0)
	n.UnfireInPlace(m, 0)
	if !m.Equal(orig) {
		t.Fatalf("unfire(fire(m)) != m: %v vs %v", m, orig)
	}
}

func TestDuplicateNamesPanic(t *testing.T) {
	n := New("x")
	n.AddPlace("p", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate place name must panic")
		}
	}()
	n.AddPlace("p", 0)
}

func TestImplicitAndChain(t *testing.T) {
	n := New("chain")
	a := n.AddTransition("a")
	b := n.AddTransition("b")
	c := n.AddTransition("c")
	n.Chain(a, b, c)
	p := n.Implicit(c, a, 1)
	if n.Places[p].Initial != 1 {
		t.Fatal("implicit place should carry requested marking")
	}
	if !n.IsMarkedGraph() {
		t.Fatal("chain+loop is a marked graph")
	}
	if !n.StronglyConnected() {
		t.Fatal("ring must be strongly connected")
	}
	// Token game: a, b, c, a, ... in strict sequence.
	m := n.InitialMarking()
	want := []int{0, 1, 2, 0, 1, 2}
	for step, tr := range want {
		en := n.EnabledList(m)
		if len(en) != 1 || en[0] != tr {
			t.Fatalf("step %d: enabled %v, want [%d]", step, en, tr)
		}
		m = n.Fire(m, tr)
	}
}

func TestImplicitNameCollision(t *testing.T) {
	n := New("dup")
	a := n.AddTransition("a")
	b := n.AddTransition("b")
	p1 := n.Implicit(a, b, 0)
	p2 := n.Implicit(a, b, 0)
	if n.Places[p1].Name == n.Places[p2].Name {
		t.Fatal("parallel implicit places must get distinct names")
	}
}

func TestStructuralClasses(t *testing.T) {
	// Choice net: p0 -> {a, b}, both -> p1 -> c -> p0.
	n := New("choice")
	p0 := n.AddPlace("p0", 1)
	p1 := n.AddPlace("p1", 0)
	a := n.AddTransition("a")
	b := n.AddTransition("b")
	c := n.AddTransition("c")
	n.ArcPT(p0, a)
	n.ArcPT(p0, b)
	n.ArcTP(a, p1)
	n.ArcTP(b, p1)
	n.ArcPT(p1, c)
	n.ArcTP(c, p0)

	if n.IsMarkedGraph() {
		t.Fatal("net with choice place is not a marked graph")
	}
	if !n.IsStateMachine() {
		t.Fatal("every transition has 1 pre / 1 post: state machine")
	}
	if !n.IsFreeChoice() {
		t.Fatal("single shared preset: free choice")
	}
	if got := n.ChoicePlaces(); len(got) != 1 || got[0] != p0 {
		t.Fatalf("choice places = %v, want [p0]", got)
	}
	if got := n.MergePlaces(); len(got) != 1 || got[0] != p1 {
		t.Fatalf("merge places = %v, want [p1]", got)
	}
	pairs := n.ConflictPairs()
	if len(pairs) != 1 || pairs[0] != [2]int{a, b} {
		t.Fatalf("conflict pairs = %v", pairs)
	}
}

func TestNonFreeChoice(t *testing.T) {
	// a and b share p0 but b also needs p1: asymmetric confusion.
	n := New("nfc")
	p0 := n.AddPlace("p0", 1)
	p1 := n.AddPlace("p1", 1)
	a := n.AddTransition("a")
	b := n.AddTransition("b")
	n.ArcPT(p0, a)
	n.ArcPT(p0, b)
	n.ArcPT(p1, b)
	pout := n.AddPlace("pout", 0)
	n.ArcTP(a, pout)
	n.ArcTP(b, pout)
	if n.IsFreeChoice() {
		t.Fatal("asymmetric choice must not be free choice")
	}
}

func TestValidate(t *testing.T) {
	n := New("bad")
	n.AddTransition("t")
	if err := n.Validate(); err == nil {
		t.Fatal("empty-preset transition must fail validation")
	}
	n2 := twoStageRing()
	if err := n2.Validate(); err != nil {
		t.Fatalf("valid net rejected: %v", err)
	}
}

func TestClone(t *testing.T) {
	n := twoStageRing()
	c := n.Clone()
	c.AddPlace("extra", 0)
	c.Transitions[0].Pre = append(c.Transitions[0].Pre, 2)
	if len(n.Places) != 2 || len(n.Transitions[0].Pre) != 1 {
		t.Fatal("clone must not share storage with original")
	}
	if c.PlaceIndex("extra") != 2 {
		t.Fatal("clone name index must be independent")
	}
}

func TestMarkingHelpers(t *testing.T) {
	m := Marking{0, 1, 2}
	if m.Safe() {
		t.Fatal("marking with 2 tokens is not safe")
	}
	if m.Tokens() != 3 {
		t.Fatalf("tokens = %d", m.Tokens())
	}
	if mp := m.MarkedPlaces(); len(mp) != 2 || mp[0] != 1 || mp[1] != 2 {
		t.Fatalf("marked places = %v", mp)
	}
	if !m.Clone().Equal(m) {
		t.Fatal("clone must equal original")
	}
	if m.Equal(Marking{0, 1}) {
		t.Fatal("length mismatch must not be equal")
	}
	k1, k2 := Marking{1, 0}.Key(), Marking{0, 1}.Key()
	if k1 == k2 {
		t.Fatal("distinct markings must have distinct keys")
	}
}

func TestMarkingFormat(t *testing.T) {
	n := twoStageRing()
	s := n.InitialMarking().Format(n)
	if s != "{p1}" {
		t.Fatalf("format = %q", s)
	}
}

// Property: firing any enabled transition and reversing it restores the
// marking, on randomly generated safe ring nets.
func TestQuickFireReversible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomRing(rng)
		m := n.InitialMarking()
		for step := 0; step < 50; step++ {
			en := n.EnabledList(m)
			if len(en) == 0 {
				return true
			}
			tr := en[rng.Intn(len(en))]
			before := m.Clone()
			n.FireInPlace(m, tr)
			after := m.Clone()
			n.UnfireInPlace(m, tr)
			if !m.Equal(before) {
				return false
			}
			m = after
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: markings of a live marked-graph ring conserve total token count.
func TestQuickRingTokenConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomRing(rng)
		m := n.InitialMarking()
		total := m.Tokens()
		for step := 0; step < 100; step++ {
			en := n.EnabledList(m)
			if len(en) == 0 {
				return total == 0
			}
			m = n.Fire(m, en[rng.Intn(len(en))])
			if m.Tokens() != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomRing builds a ring of 2..10 transitions with 1..2 tokens placed
// randomly; every place has one producer and one consumer so token count is
// invariant.
func randomRing(rng *rand.Rand) *Net {
	n := New("rring")
	k := 2 + rng.Intn(9)
	ts := make([]int, k)
	for i := range ts {
		ts[i] = n.AddTransition(trName(i))
	}
	tok := 1 + rng.Intn(2)
	for i := 0; i < k; i++ {
		init := 0
		if i < tok {
			init = 1
		}
		p := n.AddPlace("p"+trName(i), init)
		n.ArcTP(ts[i], p)
		n.ArcPT(p, ts[(i+1)%k])
	}
	return n
}

func trName(i int) string {
	return string(rune('a' + i))
}

func TestWriteDOT(t *testing.T) {
	n := twoStageRing()
	var buf bytes.Buffer
	if err := n.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "t0", "t1", "p0", "p1", "shape=box"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestStringStable(t *testing.T) {
	n := twoStageRing()
	if n.String() != n.String() {
		t.Fatal("String must be deterministic")
	}
	if !strings.Contains(n.String(), "2 places, 2 transitions") {
		t.Fatalf("unexpected String: %s", n.String())
	}
}
