package petri

import "testing"

// TestFormatMultiDigitTokens pins the fix for token counts above 9, which
// used to render as punctuation (string(rune('0'+v)) gives ':' for 10).
func TestFormatMultiDigitTokens(t *testing.T) {
	n := New("fmt")
	n.AddPlace("p", 0)
	n.AddPlace("q", 0)
	cases := []struct {
		m    Marking
		want string
	}{
		{Marking{0, 0}, "{}"},
		{Marking{1, 0}, "{p}"},
		{Marking{2, 1}, "{p*2,q}"},
		{Marking{12, 0}, "{p*12}"},
		{Marking{10, 11}, "{p*10,q*11}"},
		{Marking{255, 1}, "{p*255,q}"},
	}
	for _, tc := range cases {
		if got := tc.m.Format(n); got != tc.want {
			t.Fatalf("Format(%v) = %q, want %q", tc.m, got, tc.want)
		}
	}
}
