package petri

// Structural class queries used throughout the paper: marked graphs (Fig 3),
// choice places (Fig 5), free-choice nets (Section 2.2), state machines
// (Fig 6).

// IsMarkedGraph reports whether every place has at most one input and at most
// one output transition — the class in which only concurrency and sequencing,
// but not choice, is allowed.
func (n *Net) IsMarkedGraph() bool {
	for _, p := range n.Places {
		if len(p.Pre) > 1 || len(p.Post) > 1 {
			return false
		}
	}
	return true
}

// IsStateMachine reports whether every transition has exactly one input and
// one output place — the dual class in which only choice and sequencing, but
// not concurrency, is allowed.
func (n *Net) IsStateMachine() bool {
	for _, t := range n.Transitions {
		if len(t.Pre) != 1 || len(t.Post) != 1 {
			return false
		}
	}
	return true
}

// IsFreeChoice reports whether the net is (extended) free choice: any two
// transitions sharing an input place have identical presets. In free-choice
// nets choice and concurrency do not interfere, which many structural
// analysis results require.
func (n *Net) IsFreeChoice() bool {
	for _, p := range n.Places {
		if len(p.Post) < 2 {
			continue
		}
		first := n.Transitions[p.Post[0]].Pre
		for _, t := range p.Post[1:] {
			if !sameIntSet(first, n.Transitions[t].Pre) {
				return false
			}
		}
	}
	return true
}

// ChoicePlaces returns the indexes of all places with more than one output
// transition: the points where the net makes a (possibly non-deterministic)
// choice between alternative behaviours.
func (n *Net) ChoicePlaces() []int {
	var out []int
	for i, p := range n.Places {
		if len(p.Post) > 1 {
			out = append(out, i)
		}
	}
	return out
}

// MergePlaces returns the indexes of all places with more than one input
// transition: the points where alternative branches re-join.
func (n *Net) MergePlaces() []int {
	var out []int
	for i, p := range n.Places {
		if len(p.Pre) > 1 {
			out = append(out, i)
		}
	}
	return out
}

// ImplicitCandidates returns places with exactly one input and one output arc
// — the places conventionally drawn as plain arcs between two transitions.
func (n *Net) ImplicitCandidates() []int {
	var out []int
	for i, p := range n.Places {
		if len(p.Pre) == 1 && len(p.Post) == 1 {
			out = append(out, i)
		}
	}
	return out
}

// ConflictPairs returns all pairs of distinct transitions that share at least
// one input place (structural conflict).
func (n *Net) ConflictPairs() [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	for _, p := range n.Places {
		for i := 0; i < len(p.Post); i++ {
			for j := i + 1; j < len(p.Post); j++ {
				a, b := p.Post[i], p.Post[j]
				if a > b {
					a, b = b, a
				}
				k := [2]int{a, b}
				if !seen[k] {
					seen[k] = true
					out = append(out, k)
				}
			}
		}
	}
	return out
}

// StronglyConnected reports whether the net's underlying directed graph
// (places and transitions as nodes) is strongly connected. Live safe
// free-choice nets are covered by strongly connected components; marked
// graphs must be strongly connected to be live with a finite marking.
func (n *Net) StronglyConnected() bool {
	nodes := len(n.Places) + len(n.Transitions)
	if nodes == 0 {
		return true
	}
	// Node ids: places 0..P-1, transitions P..P+T-1.
	p := len(n.Places)
	succ := func(v int) []int {
		if v < p {
			return addAll(nil, n.Places[v].Post, p)
		}
		return append([]int(nil), n.Transitions[v-p].Post...)
	}
	pred := func(v int) []int {
		if v < p {
			return addAll(nil, n.Places[v].Pre, p)
		}
		return append([]int(nil), n.Transitions[v-p].Pre...)
	}
	return reachesAll(nodes, 0, succ) && reachesAll(nodes, 0, pred)
}

func addAll(dst []int, src []int, offset int) []int {
	for _, v := range src {
		dst = append(dst, v+offset)
	}
	return dst
}

func reachesAll(n, start int, succ func(int) []int) bool {
	seen := make([]bool, n)
	stack := []int{start}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range succ(v) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

func sameIntSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	in := map[int]bool{}
	for _, v := range a {
		in[v] = true
	}
	for _, v := range b {
		if !in[v] {
			return false
		}
	}
	return true
}
