// Package core is the flow façade: the paper's methodology end to end.
// Specification (STG) → analysis (Section 2) → complete state coding
// (Section 3.1) → next-state function derivation and gate synthesis
// (Section 3.2) → optional decomposition/technology mapping (Section 3.4) →
// implementation verification by composition with the specification mirror.
package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/techmap"
	"repro/internal/ts"
)

// Options configure Synthesize.
type Options struct {
	// Style selects the gate architecture (default ComplexGate).
	Style logic.Style
	// MaxFanIn, when > 0, runs decomposition/technology mapping to the
	// given gate input budget after synthesis.
	MaxFanIn int
	// MaxCSCSignals bounds state-signal insertion (default 3).
	MaxCSCSignals int
	// SkipVerify skips the final speed-independence verification.
	SkipVerify bool
	// Constraints are relative timing assumptions applied during
	// verification (Section 5).
	Constraints []sim.RelativeOrder
	// Reach bounds state-graph construction.
	Reach reach.Options
	// Workers sizes the worker pools of the encoding candidate search and
	// the per-signal logic derivation. 0 or 1 runs the sequential reference
	// paths; any count produces bit-identical results.
	Workers int
	// Budget bounds the whole flow: its cancellation and resource ceilings
	// are threaded into every phase (state graph, encoding, logic,
	// verification). nil is unlimited.
	Budget *budget.Budget
	// Fallback enables the degradation ladder: when a budget limit or a
	// recovered worker panic (never a cancellation) trips state-graph
	// construction, analysis is retried with progressively cheaper engines
	// — symbolic BDD traversal, then stubborn-set reduced exploration, then
	// capped explicit exploration — each under the remaining budget. A
	// degraded run returns a Report with Netlist == nil and the engines
	// tried in Attempts.
	Fallback bool
	// Obs enables observability: the flow opens a "flow:synthesize" root
	// span with one "phase:*" child per phase, every engine records its
	// spans and counters into the registry, and the final Report carries a
	// structured Metrics snapshot. nil — the default — disables all of it at
	// zero cost.
	Obs *obs.Registry
}

// Attempt records one analysis engine tried by the degradation ladder.
type Attempt struct {
	// Engine names the rung: "explicit", "symbolic", "stubborn" or
	// "explicit-capped".
	Engine string
	// Err is the typed budget error that stopped the rung; nil on success.
	Err error
	// States is the number of states the rung counted or visited (partial
	// on failed rungs).
	States int
	// Duration is the rung's wall-clock time.
	Duration time.Duration
	// Detail carries engine-specific diagnostics — BDD kernel stats on the
	// symbolic rung — so degraded runs are explainable without rerunning
	// under -metrics. "" when the engine has none.
	Detail string
}

func (a Attempt) String() string {
	out := fmt.Sprintf("%s: %d states in %v", a.Engine, a.States, a.Duration.Round(time.Millisecond))
	if a.Detail != "" {
		out += fmt.Sprintf(" [%s]", a.Detail)
	}
	if a.Err != nil {
		out += fmt.Sprintf(" (%v)", a.Err)
	}
	return out
}

// Timing is the per-phase wall-clock breakdown of a flow run.
type Timing struct {
	SG       time.Duration
	Encoding time.Duration
	Logic    time.Duration
	Mapping  time.Duration
	Verify   time.Duration
}

func (t Timing) String() string {
	s := fmt.Sprintf("sg=%v encoding=%v logic=%v", t.SG, t.Encoding, t.Logic)
	if t.Mapping > 0 {
		s += fmt.Sprintf(" map=%v", t.Mapping)
	}
	if t.Verify > 0 {
		s += fmt.Sprintf(" verify=%v", t.Verify)
	}
	return s
}

// Report is the result of a full synthesis run.
type Report struct {
	// Input is the original specification.
	Input *stg.STG
	// Spec is the final specification (after any state-signal insertion).
	Spec *stg.STG
	// SG is the state graph of Spec.
	SG *ts.SG
	// Properties is the Section 2.1 implementability suite on the input.
	Properties ts.Implementability
	// CSC describes the encoding solution ("" when none was needed).
	CSC string
	// Netlist is the synthesized implementation.
	Netlist *logic.Netlist
	// Verification is the composition check result (nil when skipped).
	Verification *sim.Result
	// Attempts traces the analysis engines run by this flow, in order. A
	// degraded run (Options.Fallback after a budget trip) has the failed
	// explicit attempt followed by the fallback rungs and Netlist == nil.
	Attempts []Attempt
	// Timing is the phase breakdown of this run.
	Timing Timing
	// Metrics is the observability snapshot of this run — every engine
	// counter plus the flow → phase → engine span tree. nil unless
	// Options.Obs was set.
	Metrics *obs.Snapshot
}

// Equations renders the implementation equations ("" on degraded runs).
func (r *Report) Equations() string {
	if r.Netlist == nil {
		return ""
	}
	return r.Netlist.Equations()
}

// Summary renders a human-readable flow report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "specification: %s (%d signals, %d transitions)\n",
		r.Input.Name(), len(r.Input.Signals), len(r.Input.Net.Transitions))
	if r.SG != nil {
		fmt.Fprintf(&b, "state graph:   %d states, %d arcs\n", r.SG.NumStates(), r.SG.NumArcs())
		fmt.Fprintf(&b, "properties:    %s\n", r.Properties)
	}
	if r.CSC != "" {
		fmt.Fprintf(&b, "state coding:  %s\n", r.CSC)
	}
	if r.Netlist == nil {
		header := "degraded"
		if n := len(r.Attempts); n == 0 || r.Attempts[n-1].Err != nil {
			header = "aborted"
		}
		fmt.Fprintf(&b, "%s analysis (no netlist synthesized):\n", header)
		for _, a := range r.Attempts {
			fmt.Fprintf(&b, "  %s\n", a)
		}
		r.timingLine(&b)
		return b.String()
	}
	fmt.Fprintf(&b, "implementation (%d gates, %d literals, max fan-in %d):\n",
		len(r.Netlist.Gates), r.Netlist.LiteralCount(), r.Netlist.MaxFanIn())
	for _, line := range strings.Split(r.Equations(), "\n") {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	if r.Verification != nil {
		if r.Verification.OK() {
			fmt.Fprintf(&b, "verification:  speed-independent and conformant (%d composed states)\n",
				r.Verification.States)
		} else {
			fmt.Fprintf(&b, "verification:  FAILED: %v\n", r.Verification.Violations)
		}
	}
	r.timingLine(&b)
	return b.String()
}

// timingLine appends the phase-breakdown line when any phase was timed — the
// one exit line both the degraded and the synthesized summary share.
func (r *Report) timingLine(b *strings.Builder) {
	if r.Timing != (Timing{}) {
		fmt.Fprintf(b, "timing:        %s\n", r.Timing)
	}
}

// Synthesize runs the complete flow on an STG specification.
//
// With Options.Budget set, every phase honors the budget's cancellation and
// resource ceilings and aborts with the typed budget errors (errors.Is
// against budget.ErrCanceled / budget.Sentinel). With Options.Fallback also
// set, a budget *limit* or a recovered worker panic during state-graph
// construction degrades to cheaper analysis engines instead of failing; see
// Options.Fallback.
func Synthesize(g *stg.STG, opts Options) (*Report, error) {
	flow := opts.Obs.Root("flow:synthesize")
	rep, err := synthesize(g, opts, flow)
	if flow != nil {
		if err != nil {
			flow.Attr("error", err.Error())
		}
		flow.End()
		if rep != nil {
			rep.Metrics = opts.Obs.Snapshot()
		}
	}
	return rep, err
}

func synthesize(g *stg.STG, opts Options, flow *obs.Span) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ropts := opts.Reach
	if ropts.Budget == nil {
		ropts.Budget = opts.Budget
	}
	sgSpan := flow.Child("phase:sg")
	if ropts.Obs == nil {
		ropts.Obs = sgSpan
	}
	phase := time.Now()
	baseSG, err := reach.BuildSG(g, ropts)
	if err != nil {
		sgSpan.End()
		sgDur := time.Since(phase)
		var le budget.ErrLimit
		var ie *budget.ErrInternal
		isLimit := errors.As(err, &le)
		if opts.Fallback && (isLimit || errors.As(err, &ie)) {
			// A resource ceiling or a recovered worker panic tripped the
			// explicit build: try the cheaper engines. le is the zero value
			// on the panic path (0 states counted), which degrade reports
			// faithfully.
			return degrade(g, opts, ropts, err, le, sgDur, flow)
		}
		wrapped := fmt.Errorf("core: state graph: %w", err)
		if budgetErr(err) {
			// Budget abort without fallback: hand back the aborted attempt
			// so callers can report how far the analysis got.
			rep := &Report{Input: g}
			rep.Attempts = append(rep.Attempts, Attempt{
				Engine: "explicit", Err: err, States: le.Used, Duration: sgDur,
			})
			return rep, wrapped
		}
		return nil, wrapped
	}
	// Dummy (λ) events are contracted for synthesis: regions are defined on
	// signal-edge arcs; the verifier still handles the dummies in the spec.
	baseSG, err = ts.ContractDummies(baseSG)
	sgSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: dummy contraction: %w", err)
	}
	rep := &Report{Input: g, Properties: baseSG.CheckImplementability()}
	rep.Timing.SG = time.Since(phase)
	rep.Attempts = append(rep.Attempts, Attempt{
		Engine: "explicit", States: baseSG.NumStates(), Duration: rep.Timing.SG,
	})
	if !rep.Properties.Persistent {
		return nil, fmt.Errorf("core: specification is not persistent (arbitration needed): %v",
			baseSG.PersistencyViolations()[0])
	}
	if !rep.Properties.DeadlockFree {
		return nil, fmt.Errorf("core: specification deadlocks")
	}

	if opts.MaxFanIn > 0 && opts.Style != logic.ComplexGate {
		return nil, fmt.Errorf("core: technology mapping requires the complex-gate style")
	}

	// State encoding can be solved in several ways; technology mapping may
	// fail on one encoding and succeed on another, so iterate over ranked
	// solutions.
	if err := opts.Budget.Check("core.encoding"); err != nil {
		return rep, err
	}
	phase = time.Now()
	encSpan := flow.Child("phase:encoding")
	sols, err := encoding.SolutionsOpts(g, opts.MaxCSCSignals, 5,
		encoding.Options{Workers: opts.Workers, Budget: opts.Budget, Obs: encSpan})
	encSpan.End()
	if err != nil {
		if budgetErr(err) {
			return rep, err
		}
		return nil, fmt.Errorf("core: state encoding: %w", err)
	}
	rep.Timing.Encoding = time.Since(phase)
	if err := opts.Budget.Check("core.logic"); err != nil {
		return rep, err
	}
	var lastErr error
	logicSpan := flow.Child("phase:logic")
	for _, sol := range sols {
		rep.Spec, rep.SG, rep.CSC = sol.STG, sol.SG, sol.Description
		phase = time.Now()
		rep.Netlist, err = logic.SynthesizeOpts(rep.SG, opts.Style,
			logic.Options{Workers: opts.Workers, Budget: opts.Budget, Obs: logicSpan})
		rep.Timing.Logic += time.Since(phase)
		if err != nil {
			if budgetErr(err) {
				logicSpan.End()
				return rep, err
			}
			lastErr = fmt.Errorf("core: logic synthesis: %w", err)
			continue
		}
		if opts.MaxFanIn > 0 {
			if err := opts.Budget.Check("core.map"); err != nil {
				logicSpan.End()
				return rep, err
			}
			phase = time.Now()
			mapSpan := flow.Child("phase:map")
			rep.Netlist, err = techmap.Map(rep.Netlist, rep.Spec, techmap.Options{MaxFanIn: opts.MaxFanIn})
			mapSpan.End()
			rep.Timing.Mapping += time.Since(phase)
			if err != nil {
				lastErr = fmt.Errorf("core: technology mapping: %w", err)
				continue
			}
		}
		lastErr = nil
		break
	}
	logicSpan.End()
	if lastErr != nil {
		return nil, lastErr
	}
	if !opts.SkipVerify {
		if err := opts.Budget.Check("core.verify"); err != nil {
			return rep, err
		}
		phase = time.Now()
		verifySpan := flow.Child("phase:verify")
		rep.Verification, err = sim.Verify(rep.Netlist, rep.Spec,
			sim.Options{Constraints: opts.Constraints, Budget: opts.Budget})
		verifySpan.End()
		rep.Timing.Verify = time.Since(phase)
		if err != nil {
			if budgetErr(err) {
				return rep, err
			}
			return nil, fmt.Errorf("core: verification: %w", err)
		}
		if !rep.Verification.OK() {
			return rep, fmt.Errorf("core: implementation fails verification: %v",
				rep.Verification.Violations)
		}
	}
	return rep, nil
}

// budgetErr reports whether err belongs to the budget taxonomy — a
// cancellation, a resource limit, or a recovered worker panic. Such errors
// pass through Synthesize unwrapped so errors.Is/As keep working, with the
// partial Report alongside.
func budgetErr(err error) bool {
	var le budget.ErrLimit
	var ie *budget.ErrInternal
	return errors.Is(err, budget.ErrCanceled) || errors.As(err, &le) || errors.As(err, &ie)
}

// degrade runs the analysis-only fallback ladder after the explicit
// state-graph build tripped a budget limit or recovered a worker panic:
// symbolic BDD traversal (counts
// states without enumerating them), then stubborn-set reduced exploration
// (deadlock-preserving), then capped explicit exploration — the guaranteed
// floor, whose partial graph is accepted as the degraded result. Each rung
// runs under the same (remaining) budget; cancellation aborts the ladder.
func degrade(g *stg.STG, opts Options, ropts reach.Options, sgErr error, le budget.ErrLimit, sgDur time.Duration, flow *obs.Span) (*Report, error) {
	fb := flow.Child("phase:fallback")
	defer fb.End()
	transitions := fb.Registry().Counter("core.fallback_transitions")

	rep := &Report{Input: g}
	rep.Timing.SG = sgDur
	rep.Attempts = append(rep.Attempts, Attempt{
		Engine: "explicit", Err: sgErr, States: le.Used, Duration: sgDur,
	})

	transitions.Inc()
	fb.Event("degrade", "to", "symbolic")
	start := time.Now()
	sres, err := symbolic.ReachOpts(g.Net, symbolic.Options{Budget: opts.Budget, Obs: fb})
	att := Attempt{Engine: "symbolic", Err: err, Duration: time.Since(start)}
	if sres != nil {
		att.States = int(sres.Count)
		att.Detail = fmt.Sprintf("iters=%d peak-nodes=%d cache-hit=%.0f%%",
			sres.Iterations, sres.PeakNodes, 100*sres.Stats.CacheHitRate())
	}
	rep.Attempts = append(rep.Attempts, att)
	if err == nil {
		return rep, nil
	}
	if errors.Is(err, budget.ErrCanceled) {
		return rep, err
	}

	transitions.Inc()
	fb.Event("degrade", "to", "stubborn")
	start = time.Now()
	rres, err := stubborn.Explore(g.Net, stubborn.Options{Budget: opts.Budget, Obs: fb})
	att = Attempt{Engine: "stubborn", Err: err, Duration: time.Since(start)}
	if rres != nil {
		att.States = rres.States
	}
	rep.Attempts = append(rep.Attempts, att)
	if err == nil {
		return rep, nil
	}
	if errors.Is(err, budget.ErrCanceled) {
		return rep, err
	}

	// The floor rung reruns the explicit engine and accepts its partial
	// graph: a state-limit trip here is the expected outcome, not a failure.
	transitions.Inc()
	fb.Event("degrade", "to", "explicit-capped")
	start = time.Now()
	ropts.Obs = fb
	gph, err := reach.Explore(g.Net, ropts)
	att = Attempt{Engine: "explicit-capped", Err: err, Duration: time.Since(start)}
	if gph != nil {
		att.States = gph.NumStates()
	}
	rep.Attempts = append(rep.Attempts, att)
	var fle budget.ErrLimit
	if err != nil && !errors.As(err, &fle) {
		return rep, err
	}
	return rep, nil
}
