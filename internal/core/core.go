// Package core is the flow façade: the paper's methodology end to end.
// Specification (STG) → analysis (Section 2) → complete state coding
// (Section 3.1) → next-state function derivation and gate synthesis
// (Section 3.2) → optional decomposition/technology mapping (Section 3.4) →
// implementation verification by composition with the specification mirror.
package core

import (
	"fmt"
	"strings"

	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/techmap"
	"repro/internal/ts"
)

// Options configure Synthesize.
type Options struct {
	// Style selects the gate architecture (default ComplexGate).
	Style logic.Style
	// MaxFanIn, when > 0, runs decomposition/technology mapping to the
	// given gate input budget after synthesis.
	MaxFanIn int
	// MaxCSCSignals bounds state-signal insertion (default 3).
	MaxCSCSignals int
	// SkipVerify skips the final speed-independence verification.
	SkipVerify bool
	// Constraints are relative timing assumptions applied during
	// verification (Section 5).
	Constraints []sim.RelativeOrder
	// Reach bounds state-graph construction.
	Reach reach.Options
}

// Report is the result of a full synthesis run.
type Report struct {
	// Input is the original specification.
	Input *stg.STG
	// Spec is the final specification (after any state-signal insertion).
	Spec *stg.STG
	// SG is the state graph of Spec.
	SG *ts.SG
	// Properties is the Section 2.1 implementability suite on the input.
	Properties ts.Implementability
	// CSC describes the encoding solution ("" when none was needed).
	CSC string
	// Netlist is the synthesized implementation.
	Netlist *logic.Netlist
	// Verification is the composition check result (nil when skipped).
	Verification *sim.Result
}

// Equations renders the implementation equations.
func (r *Report) Equations() string { return r.Netlist.Equations() }

// Summary renders a human-readable flow report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "specification: %s (%d signals, %d transitions)\n",
		r.Input.Name(), len(r.Input.Signals), len(r.Input.Net.Transitions))
	fmt.Fprintf(&b, "state graph:   %d states, %d arcs\n", r.SG.NumStates(), r.SG.NumArcs())
	fmt.Fprintf(&b, "properties:    %s\n", r.Properties)
	if r.CSC != "" {
		fmt.Fprintf(&b, "state coding:  %s\n", r.CSC)
	}
	fmt.Fprintf(&b, "implementation (%d gates, %d literals, max fan-in %d):\n",
		len(r.Netlist.Gates), r.Netlist.LiteralCount(), r.Netlist.MaxFanIn())
	for _, line := range strings.Split(r.Equations(), "\n") {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	if r.Verification != nil {
		if r.Verification.OK() {
			fmt.Fprintf(&b, "verification:  speed-independent and conformant (%d composed states)\n",
				r.Verification.States)
		} else {
			fmt.Fprintf(&b, "verification:  FAILED: %v\n", r.Verification.Violations)
		}
	}
	return b.String()
}

// Synthesize runs the complete flow on an STG specification.
func Synthesize(g *stg.STG, opts Options) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	baseSG, err := reach.BuildSG(g, opts.Reach)
	if err != nil {
		return nil, fmt.Errorf("core: state graph: %w", err)
	}
	// Dummy (λ) events are contracted for synthesis: regions are defined on
	// signal-edge arcs; the verifier still handles the dummies in the spec.
	baseSG, err = ts.ContractDummies(baseSG)
	if err != nil {
		return nil, fmt.Errorf("core: dummy contraction: %w", err)
	}
	rep := &Report{Input: g, Properties: baseSG.CheckImplementability()}
	if !rep.Properties.Persistent {
		return nil, fmt.Errorf("core: specification is not persistent (arbitration needed): %v",
			baseSG.PersistencyViolations()[0])
	}
	if !rep.Properties.DeadlockFree {
		return nil, fmt.Errorf("core: specification deadlocks")
	}

	if opts.MaxFanIn > 0 && opts.Style != logic.ComplexGate {
		return nil, fmt.Errorf("core: technology mapping requires the complex-gate style")
	}

	// State encoding can be solved in several ways; technology mapping may
	// fail on one encoding and succeed on another, so iterate over ranked
	// solutions.
	sols, err := encoding.Solutions(g, opts.MaxCSCSignals, 5)
	if err != nil {
		return nil, fmt.Errorf("core: state encoding: %w", err)
	}
	var lastErr error
	for _, sol := range sols {
		rep.Spec, rep.SG, rep.CSC = sol.STG, sol.SG, sol.Description
		rep.Netlist, err = logic.Synthesize(rep.SG, opts.Style)
		if err != nil {
			lastErr = fmt.Errorf("core: logic synthesis: %w", err)
			continue
		}
		if opts.MaxFanIn > 0 {
			rep.Netlist, err = techmap.Map(rep.Netlist, rep.Spec, techmap.Options{MaxFanIn: opts.MaxFanIn})
			if err != nil {
				lastErr = fmt.Errorf("core: technology mapping: %w", err)
				continue
			}
		}
		lastErr = nil
		break
	}
	if lastErr != nil {
		return nil, lastErr
	}
	if !opts.SkipVerify {
		rep.Verification, err = sim.Verify(rep.Netlist, rep.Spec, sim.Options{Constraints: opts.Constraints})
		if err != nil {
			return nil, fmt.Errorf("core: verification: %w", err)
		}
		if !rep.Verification.OK() {
			return rep, fmt.Errorf("core: implementation fails verification: %v",
				rep.Verification.Violations)
		}
	}
	return rep, nil
}
