// Package core is the flow façade: the paper's methodology end to end.
// Specification (STG) → analysis (Section 2) → complete state coding
// (Section 3.1) → next-state function derivation and gate synthesis
// (Section 3.2) → optional decomposition/technology mapping (Section 3.4) →
// implementation verification by composition with the specification mirror.
package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/techmap"
	"repro/internal/ts"
)

// Options configure Synthesize.
type Options struct {
	// Style selects the gate architecture (default ComplexGate).
	Style logic.Style
	// MaxFanIn, when > 0, runs decomposition/technology mapping to the
	// given gate input budget after synthesis.
	MaxFanIn int
	// MaxCSCSignals bounds state-signal insertion (default 3).
	MaxCSCSignals int
	// SkipVerify skips the final speed-independence verification.
	SkipVerify bool
	// Constraints are relative timing assumptions applied during
	// verification (Section 5).
	Constraints []sim.RelativeOrder
	// Reach bounds state-graph construction.
	Reach reach.Options
	// Workers sizes the worker pools of the encoding candidate search and
	// the per-signal logic derivation. 0 or 1 runs the sequential reference
	// paths; any count produces bit-identical results.
	Workers int
}

// Timing is the per-phase wall-clock breakdown of a flow run.
type Timing struct {
	SG       time.Duration
	Encoding time.Duration
	Logic    time.Duration
	Mapping  time.Duration
	Verify   time.Duration
}

func (t Timing) String() string {
	s := fmt.Sprintf("sg=%v encoding=%v logic=%v", t.SG, t.Encoding, t.Logic)
	if t.Mapping > 0 {
		s += fmt.Sprintf(" map=%v", t.Mapping)
	}
	if t.Verify > 0 {
		s += fmt.Sprintf(" verify=%v", t.Verify)
	}
	return s
}

// Report is the result of a full synthesis run.
type Report struct {
	// Input is the original specification.
	Input *stg.STG
	// Spec is the final specification (after any state-signal insertion).
	Spec *stg.STG
	// SG is the state graph of Spec.
	SG *ts.SG
	// Properties is the Section 2.1 implementability suite on the input.
	Properties ts.Implementability
	// CSC describes the encoding solution ("" when none was needed).
	CSC string
	// Netlist is the synthesized implementation.
	Netlist *logic.Netlist
	// Verification is the composition check result (nil when skipped).
	Verification *sim.Result
	// Timing is the phase breakdown of this run.
	Timing Timing
}

// Equations renders the implementation equations.
func (r *Report) Equations() string { return r.Netlist.Equations() }

// Summary renders a human-readable flow report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "specification: %s (%d signals, %d transitions)\n",
		r.Input.Name(), len(r.Input.Signals), len(r.Input.Net.Transitions))
	fmt.Fprintf(&b, "state graph:   %d states, %d arcs\n", r.SG.NumStates(), r.SG.NumArcs())
	fmt.Fprintf(&b, "properties:    %s\n", r.Properties)
	if r.CSC != "" {
		fmt.Fprintf(&b, "state coding:  %s\n", r.CSC)
	}
	fmt.Fprintf(&b, "implementation (%d gates, %d literals, max fan-in %d):\n",
		len(r.Netlist.Gates), r.Netlist.LiteralCount(), r.Netlist.MaxFanIn())
	for _, line := range strings.Split(r.Equations(), "\n") {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	if r.Verification != nil {
		if r.Verification.OK() {
			fmt.Fprintf(&b, "verification:  speed-independent and conformant (%d composed states)\n",
				r.Verification.States)
		} else {
			fmt.Fprintf(&b, "verification:  FAILED: %v\n", r.Verification.Violations)
		}
	}
	if r.Timing != (Timing{}) {
		fmt.Fprintf(&b, "timing:        %s\n", r.Timing)
	}
	return b.String()
}

// Synthesize runs the complete flow on an STG specification.
func Synthesize(g *stg.STG, opts Options) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	phase := time.Now()
	baseSG, err := reach.BuildSG(g, opts.Reach)
	if err != nil {
		return nil, fmt.Errorf("core: state graph: %w", err)
	}
	// Dummy (λ) events are contracted for synthesis: regions are defined on
	// signal-edge arcs; the verifier still handles the dummies in the spec.
	baseSG, err = ts.ContractDummies(baseSG)
	if err != nil {
		return nil, fmt.Errorf("core: dummy contraction: %w", err)
	}
	rep := &Report{Input: g, Properties: baseSG.CheckImplementability()}
	rep.Timing.SG = time.Since(phase)
	if !rep.Properties.Persistent {
		return nil, fmt.Errorf("core: specification is not persistent (arbitration needed): %v",
			baseSG.PersistencyViolations()[0])
	}
	if !rep.Properties.DeadlockFree {
		return nil, fmt.Errorf("core: specification deadlocks")
	}

	if opts.MaxFanIn > 0 && opts.Style != logic.ComplexGate {
		return nil, fmt.Errorf("core: technology mapping requires the complex-gate style")
	}

	// State encoding can be solved in several ways; technology mapping may
	// fail on one encoding and succeed on another, so iterate over ranked
	// solutions.
	phase = time.Now()
	sols, err := encoding.SolutionsOpts(g, opts.MaxCSCSignals, 5, encoding.Options{Workers: opts.Workers})
	if err != nil {
		return nil, fmt.Errorf("core: state encoding: %w", err)
	}
	rep.Timing.Encoding = time.Since(phase)
	var lastErr error
	for _, sol := range sols {
		rep.Spec, rep.SG, rep.CSC = sol.STG, sol.SG, sol.Description
		phase = time.Now()
		rep.Netlist, err = logic.SynthesizeOpts(rep.SG, opts.Style, logic.Options{Workers: opts.Workers})
		rep.Timing.Logic += time.Since(phase)
		if err != nil {
			lastErr = fmt.Errorf("core: logic synthesis: %w", err)
			continue
		}
		if opts.MaxFanIn > 0 {
			phase = time.Now()
			rep.Netlist, err = techmap.Map(rep.Netlist, rep.Spec, techmap.Options{MaxFanIn: opts.MaxFanIn})
			rep.Timing.Mapping += time.Since(phase)
			if err != nil {
				lastErr = fmt.Errorf("core: technology mapping: %w", err)
				continue
			}
		}
		lastErr = nil
		break
	}
	if lastErr != nil {
		return nil, lastErr
	}
	if !opts.SkipVerify {
		phase = time.Now()
		rep.Verification, err = sim.Verify(rep.Netlist, rep.Spec, sim.Options{Constraints: opts.Constraints})
		rep.Timing.Verify = time.Since(phase)
		if err != nil {
			return nil, fmt.Errorf("core: verification: %w", err)
		}
		if !rep.Verification.OK() {
			return rep, fmt.Errorf("core: implementation fails verification: %v",
				rep.Verification.Violations)
		}
	}
	return rep, nil
}
