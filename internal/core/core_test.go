package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/stg"
	"repro/internal/vme"
)

func TestFlowReadCycle(t *testing.T) {
	rep, err := core.Synthesize(vme.ReadSTG(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CSC == "" {
		t.Fatal("read cycle needs a csc signal")
	}
	if rep.Properties.CSC {
		t.Fatal("input properties must record the CSC conflict")
	}
	if !rep.Verification.OK() {
		t.Fatal("flow output must verify")
	}
	sum := rep.Summary()
	for _, want := range []string{"state graph", "csc0", "speed-independent", "DTACK = D"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestFlowAllStyles(t *testing.T) {
	for _, style := range []logic.Style{logic.ComplexGate, logic.GeneralizedC, logic.StandardC} {
		rep, err := core.Synthesize(vme.ReadSTG(), core.Options{Style: style})
		if err != nil {
			t.Fatalf("style %v: %v", style, err)
		}
		if !rep.Verification.OK() {
			t.Fatalf("style %v fails verification", style)
		}
	}
}

func TestFlowWithMapping(t *testing.T) {
	rep, err := core.Synthesize(vme.ReadSTG(), core.Options{MaxFanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Netlist.MaxFanIn() > 2 {
		t.Fatalf("mapped fan-in %d", rep.Netlist.MaxFanIn())
	}
	if _, err := core.Synthesize(vme.ReadSTG(), core.Options{
		Style: logic.GeneralizedC, MaxFanIn: 2}); err == nil {
		t.Fatal("mapping a gC netlist must be rejected")
	}
}

func TestFlowReadWrite(t *testing.T) {
	rep, err := core.Synthesize(vme.ReadWriteSTG(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verification.OK() {
		t.Fatal("read/write flow must verify")
	}
}

func TestFlowRejectsArbitration(t *testing.T) {
	g := stg.New("arb")
	g.AddSignal("x", stg.Output)
	g.AddSignal("y", stg.Output)
	xp := g.Rise("x")
	yp := g.Rise("y")
	xm := g.Fall("x")
	ym := g.Fall("y")
	n := g.Net
	p0 := n.AddPlace("p0", 1)
	n.ArcPT(p0, xp)
	n.ArcPT(p0, yp)
	n.Implicit(xp, xm, 0)
	n.Implicit(yp, ym, 0)
	n.ArcTP(xm, p0)
	n.ArcTP(ym, p0)
	if _, err := core.Synthesize(g, core.Options{}); err == nil ||
		!strings.Contains(err.Error(), "persistent") {
		t.Fatalf("output choice must be rejected, got %v", err)
	}
}

func TestFlowSkipVerify(t *testing.T) {
	rep, err := core.Synthesize(vme.ReadSTG(), core.Options{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verification != nil {
		t.Fatal("verification must be skipped")
	}
	if !strings.Contains(rep.Summary(), "implementation") {
		t.Fatal("summary without verification must still render")
	}
}
