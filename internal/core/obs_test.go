package core_test

import (
	"testing"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/vme"
)

// TestFlowMetricsSnapshot runs the full flow with observability enabled and
// checks that the report carries a snapshot with the counters of every phase
// engine and a valid flow → phase → engine span hierarchy.
func TestFlowMetricsSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := core.Synthesize(vme.ReadSTG(), core.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("report carries no metrics snapshot")
	}
	if err := rep.Metrics.ValidateHierarchy(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"reach.states", "reach.arcs",
		"encoding.candidates",
		"logic.signals", "logic.cover_literals",
	} {
		if rep.Metrics.Counters[name] == 0 {
			t.Fatalf("counter %s is zero; counters: %v", name, rep.Metrics.Counters)
		}
	}
	for _, name := range []string{"flow:synthesize", "phase:sg", "phase:encoding", "phase:logic", "phase:verify"} {
		if !hasSpan(rep.Metrics, name) {
			t.Fatalf("span %s missing; spans: %+v", name, rep.Metrics.Spans)
		}
	}
	h, ok := rep.Metrics.Histograms["logic.cover_size"]
	if !ok || h.Count == 0 {
		t.Fatalf("logic.cover_size histogram missing or empty: %+v", h)
	}
}

// TestFlowFallbackMetrics trips the state budget with the fallback ladder on
// and checks the degradation is visible in the snapshot: a phase:fallback
// span, the transition counter, and the engines tried on the way down.
func TestFlowFallbackMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := core.Synthesize(vme.ReadSTG(), core.Options{
		Obs: reg, Fallback: true, Budget: &budget.Budget{MaxStates: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("degraded report carries no metrics snapshot")
	}
	if err := rep.Metrics.ValidateHierarchy(); err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Counters["core.fallback_transitions"] == 0 {
		t.Fatalf("core.fallback_transitions is zero; counters: %v", rep.Metrics.Counters)
	}
	if !hasSpan(rep.Metrics, "phase:fallback") {
		t.Fatalf("no phase:fallback span; spans: %+v", rep.Metrics.Spans)
	}
	if !hasSpan(rep.Metrics, "engine:symbolic") {
		t.Fatalf("no engine:symbolic span under the ladder; spans: %+v", rep.Metrics.Spans)
	}
}

// TestFlowNilRegistryNoSnapshot keeps the disabled path disabled: without a
// registry the report must not grow a snapshot.
func TestFlowNilRegistryNoSnapshot(t *testing.T) {
	rep, err := core.Synthesize(vme.ReadSTG(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics != nil {
		t.Fatal("nil registry must not produce a snapshot")
	}
}

func hasSpan(snap *obs.Snapshot, name string) bool {
	for _, sp := range snap.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}
