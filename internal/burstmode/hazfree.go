// Package burstmode implements burst-mode machines (Section 6): Huffman-style
// asynchronous controllers operating under the fundamental mode assumption —
// after each burst of input events the environment lets the circuit stabilize
// before reacting to the outputs. Synthesis uses hazard-free two-level
// minimization in the style of Nowick–Dill (reference [22]): combinational
// covers guaranteed glitch-free for every specified multiple-input-change
// transition.
package burstmode

import (
	"fmt"

	"repro/internal/boolmin"
)

// DynTrans is a dynamic transition: the inputs change monotonically through
// the cube, and the function switches between the endpoints. Anchor is the
// endpoint where the function is 1 (the start for 1→0, the end for 0→1);
// hazard-freedom requires every product intersecting the cube to contain the
// anchor, so that products turn off (or on) at most once during the burst.
type DynTrans struct {
	Cube   boolmin.Cube
	Anchor uint64
}

// HFSpec is a hazard-free minimization problem over n variables.
type HFSpec struct {
	N int
	// Static1 cubes must each lie inside a single product of the cover
	// (static-1 hazard freedom).
	Static1 []boolmin.Cube
	// Static0 cubes must intersect no product.
	Static0 []boolmin.Cube
	// Dynamic transitions constrain intersecting products to contain the
	// anchor. The anchor is an on-set minterm; the rest of the cube is
	// don't-care (value falls/rises monotonically inside).
	Dynamic []DynTrans
}

// MinimizeHF computes a minimal hazard-free sum-of-products cover, or an
// error when none exists (some required cube has no legal implicant).
func MinimizeHF(spec HFSpec) (boolmin.Cover, error) {
	if spec.N > 20 {
		return boolmin.Cover{}, fmt.Errorf("burstmode: %d variables exceed the enumeration limit", spec.N)
	}
	on := map[uint64]bool{}
	off := map[uint64]bool{}
	mask := uint64(1)<<uint(spec.N) - 1
	forEachMinterm := func(c boolmin.Cube, f func(uint64)) {
		free := ^c.Care & mask
		var rec func(m, rem uint64)
		rec = func(m, rem uint64) {
			if rem == 0 {
				f(m)
				return
			}
			low := rem & (^rem + 1)
			rec(m, rem&^low)
			rec(m|low, rem&^low)
		}
		rec(c.Val, free)
	}
	for _, c := range spec.Static1 {
		forEachMinterm(c, func(m uint64) { on[m] = true })
	}
	for _, c := range spec.Static0 {
		forEachMinterm(c, func(m uint64) { off[m] = true })
	}
	for _, d := range spec.Dynamic {
		on[d.Anchor&mask] = true
		// The non-anchor endpoint is off; the interior is don't-care.
		other := otherEndpoint(d)
		off[other&mask] = true
	}
	for m := range on {
		if off[m] {
			return boolmin.Cover{}, fmt.Errorf("burstmode: minterm %b required both on and off", m)
		}
	}
	var onList, dcList []uint64
	for m := range on {
		onList = append(onList, m)
	}
	for m := uint64(0); m <= mask; m++ {
		if !on[m] && !off[m] {
			dcList = append(dcList, m)
		}
	}

	primes := boolmin.Primes(onList, dcList, spec.N)
	legal := dhfImplicants(primes, spec)

	// Required cubes: every static-1 cube, and every dynamic anchor.
	var required []boolmin.Cube
	required = append(required, spec.Static1...)
	for _, d := range spec.Dynamic {
		required = append(required, boolmin.MintermCube(d.Anchor, spec.N))
	}
	// Also every on-set minterm (subsumed by the above by construction).

	// Containment covering: greedy by coverage count.
	type item struct {
		cube    boolmin.Cube
		covered bool
	}
	items := make([]item, len(required))
	for i, r := range required {
		items[i] = item{cube: r}
	}
	var chosen []boolmin.Cube
	for {
		remaining := 0
		for _, it := range items {
			if !it.covered {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		best, bestGain := -1, 0
		for pi, p := range legal {
			gain := 0
			for _, it := range items {
				if !it.covered && p.Covers(it.cube) {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = pi, gain
			}
		}
		if best < 0 {
			// Find a witness for the error message.
			for _, it := range items {
				if !it.covered {
					return boolmin.Cover{}, fmt.Errorf(
						"burstmode: required cube %s has no hazard-free implicant",
						it.cube.String(spec.N))
				}
			}
		}
		chosen = append(chosen, legal[best])
		for i := range items {
			if legal[best].Covers(items[i].cube) {
				items[i].covered = true
			}
		}
	}
	cv := boolmin.Cover{N: spec.N, Cubes: chosen}
	if err := CheckHazardFree(cv, spec); err != nil {
		return boolmin.Cover{}, fmt.Errorf("burstmode: internal: produced cover fails check: %w", err)
	}
	return cv, nil
}

// dhfImplicants filters and reduces primes against the privileged (dynamic)
// cubes: an implicant intersecting a dynamic cube without containing its
// anchor is shrunk away from the cube in all single-literal ways, to a
// fixpoint.
func dhfImplicants(primes []boolmin.Cube, spec HFSpec) []boolmin.Cube {
	seen := map[boolmin.Cube]bool{}
	var legal []boolmin.Cube
	queue := append([]boolmin.Cube(nil), primes...)
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if seen[p] {
			continue
		}
		seen[p] = true
		violated := false
		for _, d := range spec.Dynamic {
			if !p.Intersects(d.Cube) || p.Contains(d.Anchor) {
				continue
			}
			violated = true
			// Shrink: add one literal contradicting the cube.
			for v := 0; v < spec.N; v++ {
				bit := uint64(1) << uint(v)
				if d.Cube.Care&bit == 0 || p.Care&bit != 0 {
					continue
				}
				q := p
				if d.Cube.Val&bit != 0 {
					q = q.WithLiteral(v, false)
				} else {
					q = q.WithLiteral(v, true)
				}
				queue = append(queue, q)
			}
			// Also shrink along the cube's free variables toward the anchor
			// side: adding the anchor's literal for a free-in-p variable of
			// the transition cube cannot separate... handled by the loop
			// above for care variables; free variables of d.Cube cannot
			// separate p from the cube.
			break
		}
		if !violated {
			legal = append(legal, p)
		}
	}
	// Drop dominated implicants.
	var out []boolmin.Cube
	for _, p := range legal {
		dominated := false
		for _, q := range legal {
			if p != q && q.Covers(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// CheckHazardFree verifies the three conditions on an arbitrary cover.
func CheckHazardFree(cv boolmin.Cover, spec HFSpec) error {
	for _, r := range spec.Static1 {
		inOne := false
		for _, p := range cv.Cubes {
			if p.Covers(r) {
				inOne = true
				break
			}
		}
		if !inOne {
			return fmt.Errorf("static-1 cube %s not inside a single product", r.String(spec.N))
		}
	}
	for _, z := range spec.Static0 {
		for _, p := range cv.Cubes {
			if p.Intersects(z) {
				return fmt.Errorf("product %s intersects static-0 cube %s",
					p.String(spec.N), z.String(spec.N))
			}
		}
	}
	for _, d := range spec.Dynamic {
		for _, p := range cv.Cubes {
			if p.Intersects(d.Cube) && !p.Contains(d.Anchor) {
				return fmt.Errorf("product %s illegally intersects dynamic cube %s",
					p.String(spec.N), d.Cube.String(spec.N))
			}
		}
	}
	return nil
}

// otherEndpoint returns the endpoint of the dynamic cube opposite the anchor.
func otherEndpoint(d DynTrans) uint64 {
	free := ^d.Cube.Care
	// Flip every free variable relative to the anchor.
	return (d.Anchor &^ free) | (^d.Anchor & free)
}

// TransitionCube builds the cube spanned by two minterms.
func TransitionCube(a, b uint64, n int) boolmin.Cube {
	mask := uint64(1)<<uint(n) - 1
	same := ^(a ^ b) & mask
	return boolmin.Cube{Val: a & same, Care: same}
}
