package burstmode

import (
	"fmt"
	"sort"
)

// Edge is a signal transition within a burst.
type Edge struct {
	Sig  int // index into Inputs or Outputs depending on burst kind
	Rise bool
}

// Arc is one specified transition of the machine: when the input burst
// completes (in any arrival order), the machine emits the output burst and
// moves to the target state.
type Arc struct {
	InBurst  []Edge
	OutBurst []Edge
	To       int
}

// Machine is a burst-mode specification.
type Machine struct {
	Name    string
	Inputs  []string
	Outputs []string
	// Arcs[s] lists the outgoing transitions of state s.
	Arcs    [][]Arc
	Initial int
	// InitialIn/InitialOut are the signal values at the initial state.
	InitialIn, InitialOut uint64
}

// NewMachine creates an empty machine.
func NewMachine(name string, inputs, outputs []string) *Machine {
	return &Machine{Name: name, Inputs: inputs, Outputs: outputs}
}

// AddState appends a state and returns its index.
func (m *Machine) AddState() int {
	m.Arcs = append(m.Arcs, nil)
	return len(m.Arcs) - 1
}

// AddArc adds a transition from state s.
func (m *Machine) AddArc(s int, in []Edge, out []Edge, to int) {
	m.Arcs[s] = append(m.Arcs[s], Arc{InBurst: in, OutBurst: out, To: to})
}

// stateEntry is the (input,output) vector at which a state is entered.
type stateEntry struct {
	in, out uint64
	known   bool
}

// entries computes the entry vectors of every state by traversal and checks
// consistency (a state entered with two different vectors is rejected: burst
// mode machines need unique entry points).
func (m *Machine) entries() ([]stateEntry, error) {
	ent := make([]stateEntry, len(m.Arcs))
	ent[m.Initial] = stateEntry{in: m.InitialIn, out: m.InitialOut, known: true}
	queue := []int{m.Initial}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, a := range m.Arcs[s] {
			in := ent[s].in
			for _, e := range a.InBurst {
				bit := uint64(1) << uint(e.Sig)
				if (in&bit != 0) == e.Rise {
					return nil, fmt.Errorf("burstmode: state %d: input %s already at target value",
						s, m.Inputs[e.Sig])
				}
				in ^= bit
			}
			out := ent[s].out
			for _, e := range a.OutBurst {
				bit := uint64(1) << uint(e.Sig)
				if (out&bit != 0) == e.Rise {
					return nil, fmt.Errorf("burstmode: state %d: output %s already at target value",
						s, m.Outputs[e.Sig])
				}
				out ^= bit
			}
			if ent[a.To].known {
				if ent[a.To].in != in || ent[a.To].out != out {
					return nil, fmt.Errorf("burstmode: state %d entered with inconsistent vectors", a.To)
				}
				continue
			}
			ent[a.To] = stateEntry{in: in, out: out, known: true}
			queue = append(queue, a.To)
		}
	}
	return ent, nil
}

// Validate checks well-formedness: non-empty input bursts, the maximal set
// property (no outgoing input burst is a subset of a sibling's), and unique
// entry vectors.
func (m *Machine) Validate() error {
	if len(m.Arcs) == 0 {
		return fmt.Errorf("burstmode: empty machine")
	}
	for s, arcs := range m.Arcs {
		for i, a := range arcs {
			if len(a.InBurst) == 0 {
				return fmt.Errorf("burstmode: state %d arc %d has empty input burst", s, i)
			}
			if a.To < 0 || a.To >= len(m.Arcs) {
				return fmt.Errorf("burstmode: state %d arc %d target out of range", s, i)
			}
		}
		// Maximal set property.
		for i := range arcs {
			for j := range arcs {
				if i == j {
					continue
				}
				if burstSubset(arcs[i].InBurst, arcs[j].InBurst) {
					return fmt.Errorf(
						"burstmode: state %d violates the maximal set property (burst %d ⊆ burst %d)",
						s, i, j)
				}
			}
		}
	}
	_, err := m.entries()
	return err
}

func burstSubset(a, b []Edge) bool {
	for _, ea := range a {
		found := false
		for _, eb := range b {
			if ea == eb {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// edgesString renders a burst for diagnostics.
func (m *Machine) edgesString(in bool, burst []Edge) string {
	names := m.Inputs
	if !in {
		names = m.Outputs
	}
	var parts []string
	for _, e := range burst {
		s := names[e.Sig] + "-"
		if e.Rise {
			s = names[e.Sig] + "+"
		}
		parts = append(parts, s)
	}
	sort.Strings(parts)
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
