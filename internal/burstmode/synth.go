package burstmode

import (
	"fmt"

	"repro/internal/boolmin"
)

// Impl is a synthesized burst-mode implementation: one hazard-free
// two-level cover per output, over the variable space inputs ++ outputs
// (outputs feed back, Huffman style). It applies to machines whose total
// state (input vector, output vector) uniquely identifies the specification
// state; machines needing extra state variables are rejected with an error
// (state-signal insertion is the Section 3.1 machinery, not duplicated
// here).
type Impl struct {
	Machine *Machine
	// Vars is inputs followed by outputs.
	Vars   []string
	Covers []HFResult
}

// HFResult couples an output with its cover.
type HFResult struct {
	Output int
	Cover  boolmin.Cover
	Spec   HFSpec
}

// Synthesize derives hazard-free output logic for the machine.
func Synthesize(m *Machine) (*Impl, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ent, err := m.entries()
	if err != nil {
		return nil, err
	}
	nIn, nOut := len(m.Inputs), len(m.Outputs)
	n := nIn + nOut
	if n > 20 {
		return nil, fmt.Errorf("burstmode: too many signals for exact synthesis")
	}
	total := func(in, out uint64) uint64 { return in | out<<uint(nIn) }

	impl := &Impl{Machine: m}
	impl.Vars = append(append([]string(nil), m.Inputs...), m.Outputs...)

	// Check the total-state uniqueness assumption: the (in,out) entry
	// vectors must be distinct per state.
	seen := map[uint64]int{}
	for s, e := range ent {
		if !e.known {
			continue
		}
		key := total(e.in, e.out)
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf(
				"burstmode: states %d and %d share total state %b: state signals required", prev, s, key)
		}
		seen[key] = s
	}

	for z := 0; z < nOut; z++ {
		spec := HFSpec{N: n}
		zbit := uint64(1) << uint(z)
		for s, arcs := range m.Arcs {
			if !ent[s].known {
				continue
			}
			for _, a := range arcs {
				inEnd := ent[s].in
				for _, e := range a.InBurst {
					inEnd ^= 1 << uint(e.Sig)
				}
				outEnd := ent[s].out
				zChanges := false
				for _, e := range a.OutBurst {
					outEnd ^= 1 << uint(e.Sig)
					if e.Sig == z {
						zChanges = true
					}
				}
				start := total(ent[s].in, ent[s].out)
				mid := total(inEnd, ent[s].out)
				burstCube := TransitionCube(start, mid, n)
				zVal := ent[s].out&zbit != 0
				if !zChanges {
					// z holds through the input burst.
					if zVal {
						spec.Static1 = append(spec.Static1, burstCube)
					} else {
						spec.Static0 = append(spec.Static0, burstCube)
					}
				} else {
					// Dynamic transition over the input burst cube, anchored
					// at the endpoint where z is 1.
					anchor := start
					if !zVal {
						anchor = mid
					}
					spec.Dynamic = append(spec.Dynamic, DynTrans{Cube: burstCube, Anchor: anchor})
				}
				// During the output burst (other outputs settling one at a
				// time), z must hold at its final value: static cube over
				// the output-burst cube with z fixed.
				zFinal := outEnd&zbit != 0
				oStart := ent[s].out
				if zChanges {
					oStart ^= zbit // after z itself switched
				}
				settle := TransitionCube(total(inEnd, oStart), total(inEnd, outEnd), n)
				if zFinal {
					spec.Static1 = append(spec.Static1, settle)
				} else {
					spec.Static0 = append(spec.Static0, settle)
				}
			}
		}
		cv, err := MinimizeHF(spec)
		if err != nil {
			return nil, fmt.Errorf("output %s: %w", m.Outputs[z], err)
		}
		impl.Covers = append(impl.Covers, HFResult{Output: z, Cover: cv, Spec: spec})
	}
	return impl, nil
}

// Eval computes output z under total vector v.
func (im *Impl) Eval(z int, v uint64) bool {
	return im.Covers[z].Cover.Eval(v)
}

// SimulateBurst applies the input burst edges of arc (s, ai) in every
// possible arrival order and checks fundamental-mode behaviour: each output
// changes monotonically (at most one switch) and settles at the specified
// value. It returns an error describing the first glitch found.
func (im *Impl) SimulateBurst(s, ai int) error {
	m := im.Machine
	ent, err := m.entries()
	if err != nil {
		return err
	}
	a := m.Arcs[s][ai]
	nIn := len(m.Inputs)
	start := ent[s].in | ent[s].out<<uint(nIn)

	var perm func(rest []Edge, v uint64, hist []uint64) error
	evalOuts := func(v uint64) uint64 {
		var o uint64
		for z := range m.Outputs {
			if im.Eval(z, v) {
				o |= 1 << uint(z)
			}
		}
		return o
	}
	settle := func(v uint64) uint64 {
		// Feedback settling: outputs update until fixpoint (fundamental
		// mode guarantees inputs hold still).
		for i := 0; i < len(m.Outputs)+1; i++ {
			o := evalOuts(v)
			nv := (v & (uint64(1)<<uint(nIn) - 1)) | o<<uint(nIn)
			if nv == v {
				return v
			}
			v = nv
		}
		return v
	}
	perm = func(rest []Edge, v uint64, hist []uint64) error {
		if len(rest) == 0 {
			final := settle(v)
			wantOut := ent[s].out
			for _, e := range a.OutBurst {
				wantOut ^= 1 << uint(e.Sig)
			}
			gotOut := final >> uint(nIn)
			if gotOut != wantOut {
				return fmt.Errorf("burstmode: arc %d/%d settles at outputs %b, want %b",
					s, ai, gotOut, wantOut)
			}
			// Monotonicity along the history: each output switches at most
			// once across the recorded evaluation points.
			for z := range m.Outputs {
				switches := 0
				prev := hist[0]>>uint(nIn)&(1<<uint(z)) != 0
				for _, h := range hist[1:] {
					cur := h>>uint(nIn)&(1<<uint(z)) != 0
					if cur != prev {
						switches++
						prev = cur
					}
				}
				cur := gotOut&(1<<uint(z)) != 0
				if cur != prev {
					switches++
				}
				if switches > 1 {
					return fmt.Errorf("burstmode: output %s glitches during arc %d/%d",
						m.Outputs[z], s, ai)
				}
			}
			return nil
		}
		inMask := uint64(1)<<uint(nIn) - 1
		for i := range rest {
			next := append(append([]Edge(nil), rest[:i]...), rest[i+1:]...)
			nv := v ^ 1<<uint(rest[i].Sig)
			// Record the combinational output view at this intermediate
			// point for the monotonicity check.
			point := (nv & inMask) | evalOuts(nv)<<uint(nIn)
			if err := perm(next, nv, append(hist, point)); err != nil {
				return err
			}
		}
		return nil
	}
	return perm(a.InBurst, start, []uint64{start})
}
