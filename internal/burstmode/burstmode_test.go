package burstmode

import (
	"testing"

	"repro/internal/boolmin"
)

func cube(pat string) boolmin.Cube {
	c := boolmin.FullCube()
	for i, ch := range pat {
		switch ch {
		case '1':
			c = c.WithLiteral(i, true)
		case '0':
			c = c.WithLiteral(i, false)
		}
	}
	return c
}

func TestTransitionCube(t *testing.T) {
	c := TransitionCube(0b0010, 0b0111, 4)
	// Bits 0 and 2 change: free; bits 1 (=1) and 3 (=0) fixed.
	if c.String(4) != "-1-0" {
		t.Fatalf("transition cube = %s", c.String(4))
	}
	if !c.Contains(0b0010) || !c.Contains(0b0111) || c.Contains(0b1000) {
		t.Fatal("containment broken")
	}
}

// The textbook static-1 hazard: f = ab + a'c with transition b=c=1, a: 1->0.
// A plain minimal cover glitches; the hazard-free cover must add the
// consensus term bc.
func TestStaticHazardConsensus(t *testing.T) {
	// vars: a=0, b=1, c=2.
	spec := HFSpec{
		N: 3,
		Static1: []boolmin.Cube{
			TransitionCube(0b111, 0b110, 3), // a changes, b=c=1: f stays 1
			cube("11-"),                     // ab region required
			cube("0-1"),                     // a'c region required
		},
		Static0: []boolmin.Cube{
			cube("10-"), // a b' -> 0
			cube("0-0"), // a' c' -> 0
		},
	}
	cv, err := MinimizeHF(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckHazardFree(cv, spec); err != nil {
		t.Fatal(err)
	}
	// The cover must contain a product covering the whole transition cube
	// -11 (the consensus bc).
	hasConsensus := false
	for _, p := range cv.Cubes {
		if p.Covers(cube("-11")) {
			hasConsensus = true
		}
	}
	if !hasConsensus {
		t.Fatalf("cover %s lacks the consensus term bc", cv.String())
	}
}

func TestDynamicTransitionAnchoring(t *testing.T) {
	// f falls during a two-input burst from 11 to 00 (vars a,b; f=ab'+ab=a).
	// Dynamic cube [11,01] (a falls, b stays... build: start=11 f=1,
	// end=01 f=0; cube over var a free, b=1.
	spec := HFSpec{
		N: 2,
		Dynamic: []DynTrans{{
			Cube:   TransitionCube(0b11, 0b10, 2), // a=1 fixed? bits: v0=a? use minterms
			Anchor: 0b11,
		}},
	}
	cv, err := MinimizeHF(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckHazardFree(cv, spec); err != nil {
		t.Fatal(err)
	}
	// Every product intersecting the cube contains the anchor.
	for _, p := range cv.Cubes {
		if p.Intersects(spec.Dynamic[0].Cube) && !p.Contains(0b11) {
			t.Fatal("anchor rule violated")
		}
	}
}

func TestMinimizeHFConflict(t *testing.T) {
	spec := HFSpec{
		N:       2,
		Static1: []boolmin.Cube{cube("11")},
		Static0: []boolmin.Cube{cube("11")},
	}
	if _, err := MinimizeHF(spec); err == nil {
		t.Fatal("contradictory spec must fail")
	}
}

// buildToggle is a minimal 2-state burst-mode machine: a request r toggles
// an acknowledge a.
//
//	s0: r+ / a+ -> s1
//	s1: r- / a- -> s0
func buildToggle() *Machine {
	m := NewMachine("toggle", []string{"r"}, []string{"a"})
	s0 := m.AddState()
	s1 := m.AddState()
	m.AddArc(s0, []Edge{{Sig: 0, Rise: true}}, []Edge{{Sig: 0, Rise: true}}, s1)
	m.AddArc(s1, []Edge{{Sig: 0, Rise: false}}, []Edge{{Sig: 0, Rise: false}}, s0)
	return m
}

// buildSelect is a 3-input burst-mode fragment with multi-input bursts:
//
//	s0: a+ b+ / x+ -> s1
//	s1: a- b- / x- -> s0
//	s0: c+ / y+ -> s2 ... keep it two outputs for signature uniqueness.
func buildSelect() *Machine {
	m := NewMachine("select", []string{"a", "b", "c"}, []string{"x", "y"})
	s0 := m.AddState()
	s1 := m.AddState()
	s2 := m.AddState()
	m.AddArc(s0, []Edge{{Sig: 0, Rise: true}, {Sig: 1, Rise: true}},
		[]Edge{{Sig: 0, Rise: true}}, s1)
	m.AddArc(s1, []Edge{{Sig: 0, Rise: false}, {Sig: 1, Rise: false}},
		[]Edge{{Sig: 0, Rise: false}}, s0)
	m.AddArc(s0, []Edge{{Sig: 2, Rise: true}}, []Edge{{Sig: 1, Rise: true}}, s2)
	m.AddArc(s2, []Edge{{Sig: 2, Rise: false}}, []Edge{{Sig: 1, Rise: false}}, s0)
	return m
}

func TestValidate(t *testing.T) {
	if err := buildToggle().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := buildSelect().Validate(); err != nil {
		t.Fatal(err)
	}
	// Maximal set violation: burst {a+} is a subset of {a+, b+}.
	bad := NewMachine("bad", []string{"a", "b"}, []string{"x"})
	s0 := bad.AddState()
	s1 := bad.AddState()
	s2 := bad.AddState()
	bad.AddArc(s0, []Edge{{Sig: 0, Rise: true}}, nil, s1)
	bad.AddArc(s0, []Edge{{Sig: 0, Rise: true}, {Sig: 1, Rise: true}}, nil, s2)
	if err := bad.Validate(); err == nil {
		t.Fatal("maximal set violation must be rejected")
	}
	// Empty input burst.
	bad2 := NewMachine("bad2", []string{"a"}, []string{"x"})
	b0 := bad2.AddState()
	bad2.AddArc(b0, nil, nil, b0)
	if err := bad2.Validate(); err == nil {
		t.Fatal("empty input burst must be rejected")
	}
	// Wrong polarity (a+ from a=1 state).
	bad3 := NewMachine("bad3", []string{"a"}, []string{"x"})
	c0 := bad3.AddState()
	c1 := bad3.AddState()
	bad3.AddArc(c0, []Edge{{Sig: 0, Rise: true}}, nil, c1)
	bad3.AddArc(c1, []Edge{{Sig: 0, Rise: true}}, nil, c0)
	if err := bad3.Validate(); err == nil {
		t.Fatal("polarity violation must be rejected")
	}
}

// TestBurstModeSynthToggle: E-BM acceptance — synthesize and verify
// fundamental-mode hazard-freedom by exhaustive burst simulation.
func TestBurstModeSynthToggle(t *testing.T) {
	m := buildToggle()
	impl, err := Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	for s := range m.Arcs {
		for ai := range m.Arcs[s] {
			if err := impl.SimulateBurst(s, ai); err != nil {
				t.Fatal(err)
			}
		}
	}
	// a follows r.
	if !impl.Eval(0, 0b01) { // r=1, a=0 -> a must rise
		t.Fatal("a must rise after r+")
	}
	if impl.Eval(0, 0b00) {
		t.Fatal("a must stay low at rest")
	}
}

func TestBurstModeSynthSelect(t *testing.T) {
	m := buildSelect()
	impl, err := Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	for s := range m.Arcs {
		for ai := range m.Arcs[s] {
			if err := impl.SimulateBurst(s, ai); err != nil {
				t.Fatalf("arc %d/%d: %v", s, ai, err)
			}
		}
	}
	for _, r := range impl.Covers {
		if err := CheckHazardFree(r.Cover, r.Spec); err != nil {
			t.Fatalf("output %d: %v", r.Output, err)
		}
	}
}

func TestSynthesizeRejectsSharedTotalState(t *testing.T) {
	// Two states with identical (in,out) signatures: needs state variables.
	m := NewMachine("dup", []string{"a"}, []string{"x"})
	s0 := m.AddState()
	s1 := m.AddState()
	s2 := m.AddState()
	s3 := m.AddState()
	// s0 -a+/-> s1 -a-/-> s2 -a+/-> s3 -a-/-> s0 with no output changes:
	// s0 and s2 share total state (a=0, x=0).
	m.AddArc(s0, []Edge{{Sig: 0, Rise: true}}, nil, s1)
	m.AddArc(s1, []Edge{{Sig: 0, Rise: false}}, nil, s2)
	m.AddArc(s2, []Edge{{Sig: 0, Rise: true}}, nil, s3)
	m.AddArc(s3, []Edge{{Sig: 0, Rise: false}}, nil, s0)
	if _, err := Synthesize(m); err == nil {
		t.Fatal("shared total state must be rejected")
	}
}

func TestEdgesString(t *testing.T) {
	m := buildSelect()
	s := m.edgesString(true, []Edge{{Sig: 0, Rise: true}, {Sig: 1, Rise: false}})
	if s != "a+ b-" {
		t.Fatalf("edgesString = %q", s)
	}
}
