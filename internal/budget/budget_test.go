package budget

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if err := b.Check("x"); err != nil {
		t.Fatalf("nil budget check: %v", err)
	}
	if got := b.StateLimit(42); got != 42 {
		t.Fatalf("nil budget state limit: %d", got)
	}
	if got := b.EventLimit(7); got != 7 {
		t.Fatalf("nil budget event limit: %d", got)
	}
	if err := b.CheckNodes(1 << 30); err != nil {
		t.Fatalf("nil budget node check: %v", err)
	}
}

func TestCanceledTaxonomy(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := &Budget{Ctx: ctx}
	err := b.Check("x")
	if err == nil {
		t.Fatal("canceled context must trip")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrCanceled must match context.Canceled, got %v", err)
	}
	if errors.Is(err, Sentinel(States)) {
		t.Fatal("cancellation must not look like a limit")
	}
}

func TestDeadlineIsWallLimit(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := (&Budget{Ctx: ctx}).Check("x")
	var le ErrLimit
	if !errors.As(err, &le) || le.Resource != Wall {
		t.Fatalf("want ErrLimit{Wall}, got %v", err)
	}
	if !errors.Is(err, Sentinel(Wall)) {
		t.Fatalf("want Sentinel(Wall) match, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wall limit must match context.DeadlineExceeded, got %v", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("deadline must not look like cancellation")
	}
}

func TestLimitSentinelSymmetry(t *testing.T) {
	err := LimitStates(100, 100)
	if !errors.Is(err, Sentinel(States)) {
		t.Fatal("ErrLimit must match its resource sentinel")
	}
	if !errors.Is(Sentinel(States), err) {
		t.Fatal("sentinel must match a concrete ErrLimit of the same resource")
	}
	if errors.Is(err, Sentinel(Events)) {
		t.Fatal("sentinels of different resources must not match")
	}
	var le ErrLimit
	if !errors.As(err, &le) || le.Limit != 100 || le.Used != 100 {
		t.Fatalf("errors.As payload: %+v", le)
	}
	if want := "states limit exceeded (used 100 of 100)"; !strings.Contains(err.Error(), want) {
		t.Fatalf("message %q lacks %q", err, want)
	}
}

func TestLimitMatchesWrapped(t *testing.T) {
	err := func() error { return LimitEvents(8, 9) }()
	wrapped := errors.Join(errors.New("unfold: context"), err)
	if !errors.Is(wrapped, Sentinel(Events)) {
		t.Fatal("wrapped ErrLimit must still match its sentinel")
	}
}

func TestStateLimitTighterOfBoth(t *testing.T) {
	cases := []struct {
		budget, engine, want int
	}{
		{0, 100, 100},
		{50, 100, 50},
		{200, 100, 100},
		{50, 0, 50},
	}
	for _, c := range cases {
		b := &Budget{MaxStates: c.budget}
		if got := b.StateLimit(c.engine); got != c.want {
			t.Fatalf("StateLimit(budget=%d, engine=%d) = %d, want %d",
				c.budget, c.engine, got, c.want)
		}
	}
}

func TestCheckNodes(t *testing.T) {
	b := &Budget{MaxNodes: 10}
	if err := b.CheckNodes(10); err != nil {
		t.Fatalf("at the ceiling: %v", err)
	}
	err := b.CheckNodes(11)
	var le ErrLimit
	if !errors.As(err, &le) || le.Resource != Nodes || le.Used != 11 {
		t.Fatalf("want ErrLimit{Nodes, 10, 11}, got %v", err)
	}
}

func TestHookFiresBeforeContext(t *testing.T) {
	want := errors.New("injected")
	b := &Budget{Hook: func(site string) error {
		if site == "trip" {
			return want
		}
		return nil
	}}
	if err := b.Check("ok"); err != nil {
		t.Fatalf("hook must pass through: %v", err)
	}
	if err := b.Check("trip"); !errors.Is(err, want) {
		t.Fatalf("hook error must propagate, got %v", err)
	}
}

func TestInternalError(t *testing.T) {
	err := Internal("boom", []byte("stack trace here"))
	var ie *ErrInternal
	if !errors.As(err, &ie) {
		t.Fatalf("want *ErrInternal, got %T", err)
	}
	if ie.Value != "boom" || len(ie.Stack) == 0 {
		t.Fatalf("payload: %+v", ie)
	}
	if !strings.Contains(err.Error(), "worker panic") {
		t.Fatalf("message: %q", err)
	}
}
