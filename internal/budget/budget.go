// Package budget is the resilience layer shared by every analysis and
// synthesis engine: one handle carrying cancellation (a context.Context with
// an optional wall-clock deadline) plus resource ceilings (explicit states,
// live BDD nodes, unfolding events), and one typed error taxonomy so that
// callers can classify any abort with errors.Is/errors.As regardless of
// which engine tripped it.
//
// Engines thread a *Budget through their Options and consult it at phase
// boundaries and, amortized (every ~1024 insertions), inside hot loops.
// A nil *Budget is valid everywhere and means "unlimited, never canceled",
// so sequential fast paths pay a single pointer test.
//
// The taxonomy:
//
//   - ErrCanceled — the context was canceled (errors.Is-compatible with
//     context.Canceled);
//   - ErrLimit{Resource, Limit, Used} — a resource ceiling was exceeded;
//     errors.Is matches the per-resource anchors (e.g. reach.ErrStateLimit,
//     stubborn.ErrStateLimit, which are aliases of Sentinel(States)) and,
//     for the Wall resource, context.DeadlineExceeded;
//   - ErrInternal — a worker panic converted into an error carrying the
//     recovered value and stack, instead of crashing the process.
package budget

import (
	"context"
	"errors"
	"fmt"
)

// Resource names one budgeted quantity.
type Resource string

const (
	// Wall is wall-clock time; its ceiling is the context deadline.
	Wall Resource = "wall-clock"
	// States is explicit state-space size (reach, stubborn, sim).
	States Resource = "states"
	// Nodes is live BDD nodes in the symbolic engine.
	Nodes Resource = "bdd-nodes"
	// Events is unfolding prefix events.
	Events Resource = "events"
)

// Budget carries cancellation plus resource ceilings. The zero value and the
// nil pointer are both unlimited. Budgets are immutable after construction
// and safe for concurrent use by worker pools.
type Budget struct {
	// Ctx carries cancellation and the wall-clock deadline (nil means
	// context.Background()).
	Ctx context.Context
	// MaxStates, MaxNodes and MaxEvents are per-resource ceilings
	// (0 = unlimited). Engines with their own Options.MaxStates-style caps
	// apply whichever bound is tighter.
	MaxStates int
	MaxNodes  int
	MaxEvents int
	// Hook, when non-nil, runs before every Check with the call-site label
	// ("reach.explore", "symbolic.iter", ...). A non-nil return aborts as if
	// the budget tripped; the hook may also panic to exercise worker
	// panic-recovery. It is the deterministic fault-injection seam used by
	// internal/faultinject and must be nil in production use.
	Hook func(site string) error
}

// ErrCanceled is the taxonomy anchor for cancellation. errors.Is matches it
// against both ErrCanceled itself and context.Canceled.
var ErrCanceled error = canceled{}

type canceled struct{}

func (canceled) Error() string { return "budget: canceled" }

func (canceled) Is(target error) bool { return target == context.Canceled }

// ErrLimit reports an exceeded resource ceiling. errors.Is matches the
// per-resource Sentinel anchors and, for Wall, context.DeadlineExceeded;
// errors.As extracts the ceiling and the usage that tripped it.
type ErrLimit struct {
	Resource Resource
	// Limit is the configured ceiling and Used the consumption that tripped
	// it. Both are 0 for Wall (the deadline lives in the context).
	Limit, Used int
}

func (e ErrLimit) Error() string {
	if e.Resource == Wall {
		return "budget: wall-clock deadline exceeded"
	}
	if e.Limit == 0 && e.Used == 0 {
		return fmt.Sprintf("budget: %s limit exceeded", e.Resource)
	}
	return fmt.Sprintf("budget: %s limit exceeded (used %d of %d)", e.Resource, e.Used, e.Limit)
}

func (e ErrLimit) Is(target error) bool {
	if s, ok := target.(limitSentinel); ok {
		return s.r == e.Resource
	}
	return e.Resource == Wall && target == context.DeadlineExceeded
}

// limitSentinel is the errors.Is anchor shared by every ErrLimit of one
// resource; legacy per-engine sentinels alias it.
type limitSentinel struct{ r Resource }

func (s limitSentinel) Error() string { return fmt.Sprintf("budget: %s limit exceeded", s.r) }

func (s limitSentinel) Is(target error) bool {
	if l, ok := target.(ErrLimit); ok {
		return l.Resource == s.r
	}
	return false
}

// Sentinel returns the errors.Is anchor for resource r: every ErrLimit with
// that resource matches it, in either direction. reach.ErrStateLimit and
// stubborn.ErrStateLimit are aliases of Sentinel(States).
func Sentinel(r Resource) error { return limitSentinel{r} }

// ErrInternal is a recovered worker panic: the pipeline reports it as an
// error instead of crashing the process. Use Internal to build one and
// errors.As(*ErrInternal) to inspect the payload.
type ErrInternal struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *ErrInternal) Error() string {
	return fmt.Sprintf("internal error (worker panic): %v", e.Value)
}

// Internal wraps a recovered panic value and its stack as an *ErrInternal.
func Internal(value any, stack []byte) error {
	return &ErrInternal{Value: value, Stack: stack}
}

// ctx returns the effective context.
func (b *Budget) ctx() context.Context {
	if b == nil || b.Ctx == nil {
		return context.Background()
	}
	return b.Ctx
}

// Check polls cancellation (and the fault-injection hook) at the named site.
// It returns nil, ErrCanceled, or ErrLimit{Wall}. Amortize calls in hot
// loops — one check per ~1024 units of work keeps the overhead unmeasurable.
func (b *Budget) Check(site string) error {
	if b == nil {
		return nil
	}
	if b.Hook != nil {
		if err := b.Hook(site); err != nil {
			return err
		}
	}
	if b.Ctx != nil {
		select {
		case <-b.Ctx.Done():
			if errors.Is(b.Ctx.Err(), context.DeadlineExceeded) {
				return ErrLimit{Resource: Wall}
			}
			return ErrCanceled
		default:
		}
	}
	return nil
}

// StateLimit returns the effective state ceiling: the tighter of the
// engine's own cap and the budget's MaxStates (0 = no budget ceiling).
func (b *Budget) StateLimit(engineCap int) int {
	if b == nil || b.MaxStates <= 0 {
		return engineCap
	}
	if engineCap > 0 && engineCap < b.MaxStates {
		return engineCap
	}
	return b.MaxStates
}

// CheckNodes enforces the live-BDD-node ceiling.
func (b *Budget) CheckNodes(used int) error {
	if b == nil || b.MaxNodes <= 0 || used <= b.MaxNodes {
		return nil
	}
	return ErrLimit{Resource: Nodes, Limit: b.MaxNodes, Used: used}
}

// EventLimit returns the effective unfolding event ceiling, like StateLimit.
func (b *Budget) EventLimit(engineCap int) int {
	if b == nil || b.MaxEvents <= 0 {
		return engineCap
	}
	if engineCap > 0 && engineCap < b.MaxEvents {
		return engineCap
	}
	return b.MaxEvents
}

// LimitStates builds the canonical states-ceiling error.
func LimitStates(limit, used int) error {
	return ErrLimit{Resource: States, Limit: limit, Used: used}
}

// LimitEvents builds the canonical events-ceiling error.
func LimitEvents(limit, used int) error {
	return ErrLimit{Resource: Events, Limit: limit, Used: used}
}

// CheckEvery is the recommended amortization stride for per-insertion
// budget checks in hot exploration loops.
const CheckEvery = 1024

// Hooked reports whether a fault-injection hook is installed. Amortized
// loops hoist this flag and check every iteration when it is set, so
// injection schedules are exact; production budgets have no hook and keep
// the 1-in-CheckEvery stride.
func (b *Budget) Hooked() bool { return b != nil && b.Hook != nil }
