package stg

import (
	"strings"
	"testing"
)

// mustFixedPoint parses in, writes the canonical form, reparses and rewrites,
// and requires the two renderings (and canonical hashes) to agree — the
// cache-key contract of CanonicalHash.
func mustFixedPoint(t *testing.T, in string) (*STG, string) {
	t.Helper()
	g, err := ParseG(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var first strings.Builder
	if err := g.WriteG(&first); err != nil {
		t.Fatalf("write: %v", err)
	}
	g2, err := ParseG(strings.NewReader(first.String()))
	if err != nil {
		t.Fatalf("own output rejected: %v\noutput:\n%s", err, first.String())
	}
	var second strings.Builder
	if err := g2.WriteG(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("canonical form is not a fixed point:\n--- first\n%s--- second\n%s",
			first.String(), second.String())
	}
	h1, err := g.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := g2.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("canonical hashes differ across a parse cycle: %s vs %s", h1, h2)
	}
	return g, h1
}

// The .dummy line used to be emitted in transition-creation order, which a
// reparse of the (line-sorted) canonical form permutes — two parses of the
// same net hashed differently.
func TestCanonicalDummyOrder(t *testing.T) {
	mustFixedPoint(t, ".model d\n.inputs a\n.dummy x y\n.graph\ny x\nx y\n.marking { <x,y> }\n.end\n")
	// Same net with the graph lines (and thus transition creation order)
	// reversed must hash identically.
	_, h1 := mustFixedPoint(t, ".model d\n.inputs a\n.dummy x y\n.graph\ny x\nx y\n.marking { <x,y> }\n.end\n")
	_, h2 := mustFixedPoint(t, ".model d\n.inputs a\n.dummy x y\n.graph\nx y\ny x\n.marking { <x,y> }\n.end\n")
	if h1 != h2 {
		t.Fatalf("transition order leaked into the canonical hash: %s vs %s", h1, h2)
	}
}

// A multiply-marked implicit place renders as "<a,b>=2" in .marking; the
// parser used to reject the count suffix on "<"-prefixed names, so WriteG
// output was unparseable.
func TestCanonicalImplicitMarkingCount(t *testing.T) {
	g := New("m")
	g.AddSignal("a", Input)
	g.AddSignal("b", Output)
	t1 := g.Rise("a")
	t2 := g.Rise("b")
	g.Net.Implicit(t1, t2, 2)
	g.Net.Implicit(t2, t1, 0)
	var b strings.Builder
	if err := g.WriteG(&b); err != nil {
		t.Fatal(err)
	}
	mustFixedPoint(t, b.String())
}

// A non-canonically-named implicit place (here "<x") between a+ and b+ is
// written as a bare "a+ b+" arc, which reparses under the canonical name
// "<a+,b+>". When a *different* place already bears that name, the reparse
// used to merge the two places into one, silently changing the net.
func TestCanonicalNameCollision(t *testing.T) {
	in := ".model m\n.inputs a b c d e\n.graph\n" +
		"a+ <x\n<x b+\n" +
		"c+ <a+,b+>\ne+ <a+,b+>\n<a+,b+> d+\n" +
		"b+ a+\nd+ c+\nd+ e+\n" +
		".marking { <b+,a+> <d+,c+> <d+,e+> }\n.end\n"
	g, _ := mustFixedPoint(t, in)
	// The collision must not merge places: the net has the "<x" pair place,
	// the 2-in/1-out "<a+,b+>" place, and the three marked implicit places.
	np := len(g.Net.Places)
	var first strings.Builder
	if err := g.WriteG(&first); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseG(strings.NewReader(first.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Net.Places) != np {
		t.Fatalf("reparse changed place count: %d -> %d\ncanonical:\n%s",
			np, len(g2.Net.Places), first.String())
	}
}

// CanonicalHash must be insensitive to textual noise (comments, blank lines,
// line order) and sensitive to structural change (marking moved).
func TestCanonicalHashStability(t *testing.T) {
	a := ".model m\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a+\n.marking { <b+,a+> }\n.end\n"
	b := "# a comment\n.model m\n.inputs a\n.outputs b\n\n.graph\nb+ a+\na+ b+\n.marking { <b+,a+> }\n.end\n"
	c := ".model m\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a+\n.marking { <a+,b+> }\n.end\n"
	hash := func(in string) string {
		g, err := ParseG(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		h, err := g.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	if hash(a) != hash(b) {
		t.Fatal("textual noise changed the canonical hash")
	}
	if hash(a) == hash(c) {
		t.Fatal("moving the marking did not change the canonical hash")
	}
	if len(hash(a)) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", hash(a))
	}
}
