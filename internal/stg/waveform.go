package stg

import "fmt"

// Waveform is the engineering-level input of the flow: a timing diagram
// (Figure 2 of the paper). It lists signal edges in the order they appear in
// one cycle of the diagram, plus the causality arrows the designer draws
// between edges. FromWaveform turns it into the cyclic marked-graph STG of
// Figure 3: each causality arrow becomes an implicit place, and arrows that
// point "backwards" in the event list (closing the cycle) carry the initial
// tokens.
type Waveform struct {
	Name string

	// Signals declares each signal once, in display order.
	Signals []Signal

	// Events are the edges of one cycle, in diagram order.
	Events []WaveEvent

	// Causality lists arrows between event indexes: Causality[k] = [i, j]
	// means event i causes (must precede) event j.
	Causality [][2]int
}

// WaveEvent is one edge in a timing diagram.
type WaveEvent struct {
	Signal string
	Dir    Dir
}

// FromWaveform compiles a timing diagram into a marked-graph STG. Arrows
// i->j with i < j become unmarked places; arrows with i >= j (pointing to an
// earlier edge, i.e. into the next cycle) become places holding one token.
func FromWaveform(w Waveform) (*STG, error) {
	g := New(w.Name)
	for _, s := range w.Signals {
		g.AddSignal(s.Name, s.Kind)
	}
	trans := make([]int, len(w.Events))
	for i, ev := range w.Events {
		sig := g.SignalIndex(ev.Signal)
		if sig < 0 {
			return nil, fmt.Errorf("stg: waveform event %d references undeclared signal %q", i, ev.Signal)
		}
		trans[i] = g.AddTransition(sig, ev.Dir)
	}
	for _, arc := range w.Causality {
		i, j := arc[0], arc[1]
		if i < 0 || i >= len(trans) || j < 0 || j >= len(trans) {
			return nil, fmt.Errorf("stg: causality arc %v out of range", arc)
		}
		tokens := 0
		if i >= j {
			tokens = 1
		}
		g.Net.Implicit(trans[i], trans[j], tokens)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.Net.IsMarkedGraph() {
		return nil, fmt.Errorf("stg: waveform compilation must yield a marked graph")
	}
	return g, nil
}
