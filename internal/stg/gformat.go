package stg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the astg ".g" interchange format used by petrify and
// SIS, so that specs can be exchanged with the historical toolchain:
//
//	.model vme-read
//	.inputs DSr LDTACK
//	.outputs LDS DTACK D
//	.graph
//	DSr+ LDS+
//	p0 DSr+
//	...
//	.marking { p0 <LDS+,LDTACK+> }
//	.end
//
// Tokens in the .graph section are transition labels (sig+, sig-, sig~,
// optionally /k-suffixed) for declared signals, dummy-event names declared
// with .dummy, or explicit place names. An arc between two transitions
// creates an implicit place named "<src,dst>".

// ParseG parses an STG in .g format.
func ParseG(r io.Reader) (*STG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var g *STG
	model := "stg"
	type decl struct {
		names []string
		kind  Kind
	}
	var decls []decl
	dummies := map[string]bool{}
	var graphLines [][]string
	var markingLine string
	inGraph := false

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == ".model" || fields[0] == ".name":
			if len(fields) > 1 {
				model = fields[1]
			}
		case fields[0] == ".inputs":
			decls = append(decls, decl{fields[1:], Input})
		case fields[0] == ".outputs":
			decls = append(decls, decl{fields[1:], Output})
		case fields[0] == ".internal":
			decls = append(decls, decl{fields[1:], Internal})
		case fields[0] == ".dummy":
			for _, d := range fields[1:] {
				dummies[d] = true
			}
		case fields[0] == ".graph":
			inGraph = true
		case fields[0] == ".marking":
			markingLine = line
			inGraph = false
		case fields[0] == ".end":
			inGraph = false
		case strings.HasPrefix(fields[0], "."):
			// Ignore unknown dot-directives (.capacity, .slowenv, ...).
		case inGraph:
			graphLines = append(graphLines, fields)
		default:
			return nil, fmt.Errorf("stg: line %d: unexpected %q outside .graph", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	g = New(model)
	for _, d := range decls {
		for _, name := range d.names {
			if g.SignalIndex(name) >= 0 {
				return nil, fmt.Errorf("stg: signal %q declared twice", name)
			}
			g.AddSignal(name, d.kind)
		}
	}

	// First pass: create every transition node mentioned anywhere, so that
	// arcs can refer to them regardless of declaration order.
	transIdx := map[string]int{}
	ensureNode := func(tok string) (isTrans bool, idx int, err error) {
		if i, ok := transIdx[tok]; ok {
			return true, i, nil
		}
		if sig, dir, ok := g.parseLabel(tok); ok {
			t := g.Net.AddTransition(tok)
			g.Labels = append(g.Labels, Label{Sig: sig, Dir: dir})
			transIdx[tok] = t
			return true, t, nil
		}
		if dummies[tok] || dummies[strings.SplitN(tok, "/", 2)[0]] {
			t := g.AddDummy(tok)
			transIdx[tok] = t
			return true, t, nil
		}
		return false, 0, nil
	}
	for _, fields := range graphLines {
		for _, tok := range fields {
			if _, _, err := ensureNode(tok); err != nil {
				return nil, err
			}
		}
	}
	// Second pass: places and arcs.
	placeIdx := map[string]int{}
	ensurePlace := func(name string) int {
		if i, ok := placeIdx[name]; ok {
			return i
		}
		i := g.Net.AddPlace(name, 0)
		placeIdx[name] = i
		return i
	}
	for _, fields := range graphLines {
		src := fields[0]
		srcIsT, srcT, _ := ensureNode(src)
		var srcP int
		if !srcIsT {
			srcP = ensurePlace(src)
		}
		for _, dst := range fields[1:] {
			dstIsT, dstT, _ := ensureNode(dst)
			switch {
			case srcIsT && dstIsT:
				name := "<" + src + "," + dst + ">"
				p := ensurePlace(name)
				g.Net.ArcTP(srcT, p)
				g.Net.ArcPT(p, dstT)
			case srcIsT && !dstIsT:
				g.Net.ArcTP(srcT, ensurePlace(dst))
			case !srcIsT && dstIsT:
				g.Net.ArcPT(srcP, dstT)
			default:
				return nil, fmt.Errorf("stg: arc between two places %q -> %q", src, dst)
			}
		}
	}

	if markingLine != "" {
		if err := parseMarking(g, placeIdx, markingLine); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// parseLabel decodes "SIG+", "SIG-", "SIG~" with optional "/k" suffix for a
// declared signal.
func (g *STG) parseLabel(tok string) (sig int, dir Dir, ok bool) {
	body := tok
	if i := strings.IndexByte(body, '/'); i >= 0 {
		if _, err := strconv.Atoi(body[i+1:]); err != nil {
			return 0, 0, false
		}
		body = body[:i]
	}
	if len(body) < 2 {
		return 0, 0, false
	}
	var d Dir
	switch body[len(body)-1] {
	case '+':
		d = Rise
	case '-':
		d = Fall
	case '~':
		d = Toggle
	default:
		return 0, 0, false
	}
	s := g.SignalIndex(body[:len(body)-1])
	if s < 0 {
		return 0, 0, false
	}
	return s, d, true
}

func parseMarking(g *STG, placeIdx map[string]int, line string) error {
	open := strings.IndexByte(line, '{')
	close := strings.LastIndexByte(line, '}')
	if open < 0 || close < open {
		return fmt.Errorf("stg: malformed .marking line %q", line)
	}
	body := line[open+1 : close]
	// Tokens are either plain names or "<a,b>" (no spaces inside petrify
	// output); allow both "<a,b>" and "name=k".
	var toks []string
	for _, f := range strings.Fields(body) {
		toks = append(toks, f)
	}
	for _, tok := range toks {
		count := 1
		// A "=k" token-count suffix follows the place name, which may itself
		// be an implicit "<a,b>" name — so only an '=' after the closing '>'
		// (or any '=' in a bracketless name) is a count.
		if i := strings.LastIndexByte(tok, '='); i >= 0 && i > strings.LastIndexByte(tok, '>') {
			n, err := strconv.Atoi(tok[i+1:])
			if err != nil {
				return fmt.Errorf("stg: bad marking count in %q", tok)
			}
			count = n
			tok = tok[:i]
		}
		p, ok := placeIdx[tok]
		if !ok {
			return fmt.Errorf("stg: marking references unknown place %q", tok)
		}
		g.Net.Places[p].Initial = count
	}
	return nil
}

// WriteG renders the STG in .g format. Implicit places (single-arc, named
// "<a,b>") are emitted as direct transition→transition arcs.
func (g *STG) WriteG(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, ".model %s\n", g.Name())
	writeSigLine := func(kw string, kind Kind) {
		var names []string
		for _, s := range g.Signals {
			if s.Kind == kind {
				names = append(names, s.Name)
			}
		}
		if len(names) > 0 {
			fmt.Fprintf(&b, "%s %s\n", kw, strings.Join(names, " "))
		}
	}
	writeSigLine(".inputs", Input)
	writeSigLine(".outputs", Output)
	writeSigLine(".internal", Internal)
	var dummies []string
	for t, l := range g.Labels {
		if l.Sig < 0 {
			dummies = append(dummies, g.Net.Transitions[t].Name)
		}
	}
	if len(dummies) > 0 {
		// Transition creation order is parse-order dependent (a reparse of
		// the line-sorted canonical form permutes it), so the .dummy line
		// must be sorted for the rendering to be canonical.
		sort.Strings(dummies)
		fmt.Fprintf(&b, ".dummy %s\n", strings.Join(dummies, " "))
	}
	b.WriteString(".graph\n")

	// A place prints as a bare transition→transition arc only when it is
	// the unique implicit place between that pair: parallel implicit places
	// would collapse into one on reparse, so duplicates are demoted to
	// explicit named places.
	firstOfPair := map[[2]int]int{}
	for p := range g.Net.Places {
		pl := g.Net.Places[p]
		if len(pl.Pre) != 1 || len(pl.Post) != 1 {
			continue
		}
		key := [2]int{pl.Pre[0], pl.Post[0]}
		prev, ok := firstOfPair[key]
		// Prefer the canonical "<pre,post>" name, then the lexicographically
		// smallest, so the choice is stable across parse/write cycles.
		canon := "<" + g.Net.Transitions[pl.Pre[0]].Name + "," + g.Net.Transitions[pl.Post[0]].Name + ">"
		switch {
		case !ok:
			firstOfPair[key] = p
		case g.Net.Places[prev].Name == canon:
			// keep prev
		case pl.Name == canon || pl.Name < g.Net.Places[prev].Name:
			firstOfPair[key] = p
		}
	}
	winner := map[int]bool{}
	for _, p := range firstOfPair {
		if strings.HasPrefix(g.Net.Places[p].Name, "<") {
			winner[p] = true
		}
	}
	// A bare "pre post" arc reparses under the canonical "<pre,post>" name,
	// so a winner whose canonical name belongs to a different place that this
	// rendering emits *by name* would merge with it on reparse. Demote such
	// winners to explicit places. Only emitted names count — a place that is
	// itself written as a bare arc, or dropped entirely (isolated and
	// unmarked), does not collide — and demotion emits the winner's own name,
	// which can trigger further collisions, so iterate to the (unique,
	// order-independent) fixpoint of this monotone closure.
	emitted := map[string]int{}
	for p := range g.Net.Places {
		pl := g.Net.Places[p]
		if winner[p] || (len(pl.Pre) == 0 && len(pl.Post) == 0 && pl.Initial == 0) {
			continue
		}
		emitted[pl.Name] = p
	}
	canonOf := func(p int) string {
		pl := g.Net.Places[p]
		return "<" + g.Net.Transitions[pl.Pre[0]].Name + "," + g.Net.Transitions[pl.Post[0]].Name + ">"
	}
	for changed := true; changed; {
		changed = false
		for p := range winner {
			if q, taken := emitted[canonOf(p)]; taken && q != p {
				delete(winner, p)
				emitted[g.Net.Places[p].Name] = p
				changed = true
			}
		}
	}
	implicit := func(p int) bool { return winner[p] }
	var lines []string
	for t := range g.Net.Transitions {
		var dsts []string
		for _, p := range g.Net.Transitions[t].Post {
			if implicit(p) {
				dsts = append(dsts, g.Net.Transitions[g.Net.Places[p].Post[0]].Name)
			} else {
				dsts = append(dsts, g.Net.Places[p].Name)
			}
		}
		if len(dsts) > 0 {
			sort.Strings(dsts)
			lines = append(lines, g.Net.Transitions[t].Name+" "+strings.Join(dsts, " "))
		}
	}
	for p := range g.Net.Places {
		if implicit(p) {
			continue
		}
		var dsts []string
		for _, t := range g.Net.Places[p].Post {
			dsts = append(dsts, g.Net.Transitions[t].Name)
		}
		switch {
		case len(dsts) > 0:
			sort.Strings(dsts)
			lines = append(lines, g.Net.Places[p].Name+" "+strings.Join(dsts, " "))
		case len(g.Net.Places[p].Pre) == 0 && g.Net.Places[p].Initial > 0:
			// A marked place with no arcs at all would otherwise only show
			// up in .marking, which the parser rejects as an unknown name; a
			// bare line declares it.
			lines = append(lines, g.Net.Places[p].Name)
		}
	}
	// Canonical form: sorted adjacency lines, so that write∘parse is stable
	// regardless of declaration order.
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}

	var marks []string
	for p, pl := range g.Net.Places {
		if pl.Initial == 0 {
			continue
		}
		name := pl.Name
		if implicit(p) {
			name = "<" + g.Net.Transitions[pl.Pre[0]].Name + "," + g.Net.Transitions[pl.Post[0]].Name + ">"
		}
		if pl.Initial > 1 {
			name = fmt.Sprintf("%s=%d", name, pl.Initial)
		}
		marks = append(marks, name)
	}
	sort.Strings(marks)
	fmt.Fprintf(&b, ".marking { %s }\n.end\n", strings.Join(marks, " "))
	_, err := io.WriteString(w, b.String())
	return err
}
