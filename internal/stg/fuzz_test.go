package stg

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzSTGParse drives the .g parser with arbitrary bytes. The parser must
// never panic; and whenever it accepts an input, the canonical form must be
// a fixed point: write → reparse → write reproduces the first rendering
// byte for byte. The committed corpus under testdata/fuzz/FuzzSTGParse
// seeds the interesting shapes; the repo-level testdata specs are added at
// run time so every shipped fixture is always in the corpus.
func FuzzSTGParse(f *testing.F) {
	specs, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.g"))
	for _, path := range specs {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(".model m\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a+\n.marking { <b+,a+> }\n.end\n"))
	f.Add([]byte(".model d\n.inputs a\n.dummy eps\n.graph\na+ eps\neps a-\na- a+\n.marking { <a-,a+> }\n.end\n"))
	f.Add([]byte(".model p\n.inputs a\n.graph\np0 a+\na+ p0\n.marking { p0=2 }\n.end\n"))
	f.Add([]byte(".model t\n.inputs a\n.graph\na~ a~/1\na~/1 a~\n.marking { <a~/1,a~> }\n.end\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseG(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only the no-panic guarantee applies
		}
		var first strings.Builder
		if err := g.WriteG(&first); err != nil {
			t.Fatalf("WriteG on accepted input: %v", err)
		}
		g2, err := ParseG(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("own output rejected: %v\ninput:\n%s\noutput:\n%s", err, data, first.String())
		}
		var second strings.Builder
		if err := g2.WriteG(&second); err != nil {
			t.Fatalf("WriteG after round trip: %v", err)
		}
		if first.String() != second.String() {
			t.Fatalf("canonical form is not a fixed point:\n--- first\n%s\n--- second\n%s",
				first.String(), second.String())
		}
	})
}
