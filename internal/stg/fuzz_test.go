package stg

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzSTGParse drives the .g parser with arbitrary bytes. The parser must
// never panic; and whenever it accepts an input, the canonical form must be
// a fixed point: write → reparse → write reproduces the first rendering
// byte for byte. The committed corpus under testdata/fuzz/FuzzSTGParse
// seeds the interesting shapes; the repo-level testdata specs are added at
// run time so every shipped fixture is always in the corpus.
func FuzzSTGParse(f *testing.F) {
	specs, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.g"))
	for _, path := range specs {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(".model m\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a+\n.marking { <b+,a+> }\n.end\n"))
	f.Add([]byte(".model d\n.inputs a\n.dummy eps\n.graph\na+ eps\neps a-\na- a+\n.marking { <a-,a+> }\n.end\n"))
	f.Add([]byte(".model p\n.inputs a\n.graph\np0 a+\na+ p0\n.marking { p0=2 }\n.end\n"))
	f.Add([]byte(".model t\n.inputs a\n.graph\na~ a~/1\na~/1 a~\n.marking { <a~/1,a~> }\n.end\n"))
	// Shapes from the canonical-form bugfix sweep: dummy-order sensitivity,
	// a multiply-marked implicit place, and a place whose name collides with
	// another pair's canonical "<pre,post>" name.
	f.Add([]byte(".model d2\n.inputs a\n.dummy x y\n.graph\ny x\nx y\n.marking { <x,y> }\n.end\n"))
	f.Add([]byte(".model m2\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a+\n.marking { <a+,b+>=2 }\n.end\n"))
	f.Add([]byte(".model m3\n.inputs a b c d e\n.graph\na+ <x\n<x b+\nc+ <a+,b+>\ne+ <a+,b+>\n<a+,b+> d+\nb+ a+\nd+ c+\nd+ e+\n.marking { <b+,a+> <d+,c+> <d+,e+> }\n.end\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseG(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only the no-panic guarantee applies
		}
		var first strings.Builder
		if err := g.WriteG(&first); err != nil {
			t.Fatalf("WriteG on accepted input: %v", err)
		}
		g2, err := ParseG(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("own output rejected: %v\ninput:\n%s\noutput:\n%s", err, data, first.String())
		}
		var second strings.Builder
		if err := g2.WriteG(&second); err != nil {
			t.Fatalf("WriteG after round trip: %v", err)
		}
		if first.String() != second.String() {
			t.Fatalf("canonical form is not a fixed point:\n--- first\n%s\n--- second\n%s",
				first.String(), second.String())
		}
		// Hash equality of two parses of the same net is the cache-key
		// contract of the synthesis daemon: CanonicalHash must not see
		// parse-order artifacts (transition creation order, implicit-place
		// naming) that the textual fixed point hides.
		h1, err := g.CanonicalHash()
		if err != nil {
			t.Fatalf("CanonicalHash: %v", err)
		}
		h2, err := g2.CanonicalHash()
		if err != nil {
			t.Fatalf("CanonicalHash after round trip: %v", err)
		}
		if h1 != h2 {
			t.Fatalf("canonical hashes differ across a parse cycle: %s vs %s\ninput:\n%s", h1, h2, data)
		}
	})
}
