// Package stg implements Signal Transition Graphs: Petri nets whose
// transitions are interpreted as rising ("+") and falling ("-") edges of
// interface signals. STGs are the paper's central specification model —
// "a formalization of timing diagrams".
package stg

import (
	"fmt"
	"strings"

	"repro/internal/petri"
)

// Kind classifies a signal by who drives it.
type Kind int

const (
	// Input signals are driven by the environment.
	Input Kind = iota
	// Output signals are driven by the circuit and observed by the
	// environment.
	Output
	// Internal signals are driven and observed only by the circuit
	// (e.g. inserted state signals such as csc0).
	Internal
	// Dummy marks a signal-less synchronization event (λ-transition).
	Dummy
)

func (k Kind) String() string {
	switch k {
	case Input:
		return "input"
	case Output:
		return "output"
	case Internal:
		return "internal"
	case Dummy:
		return "dummy"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dir is the direction of a signal transition.
type Dir int

const (
	// Rise is a 0->1 edge, written "+".
	Rise Dir = iota
	// Fall is a 1->0 edge, written "-".
	Fall
	// Toggle flips the signal, written "~". Used by some specs where the
	// phase is irrelevant.
	Toggle
)

func (d Dir) String() string {
	switch d {
	case Rise:
		return "+"
	case Fall:
		return "-"
	case Toggle:
		return "~"
	}
	return "?"
}

// Signal is an interface signal of the specification.
type Signal struct {
	Name string
	Kind Kind
}

// Label interprets one Petri-net transition as a signal edge. Sig is an index
// into STG.Signals, or -1 for a dummy transition.
type Label struct {
	Sig int
	Dir Dir
}

// STG couples a Petri net with a signal interpretation. Labels is parallel to
// Net.Transitions.
type STG struct {
	Net     *petri.Net
	Signals []Signal
	Labels  []Label

	sigByName map[string]int
}

// New returns an empty STG with the given name.
func New(name string) *STG {
	return &STG{
		Net:       petri.New(name),
		sigByName: make(map[string]int),
	}
}

// Name returns the underlying net's name.
func (g *STG) Name() string { return g.Net.Name }

// AddSignal declares a signal and returns its index. Duplicate names panic.
func (g *STG) AddSignal(name string, kind Kind) int {
	if _, dup := g.sigByName[name]; dup {
		panic(fmt.Sprintf("stg: duplicate signal %q", name))
	}
	idx := len(g.Signals)
	g.Signals = append(g.Signals, Signal{Name: name, Kind: kind})
	g.sigByName[name] = idx
	return idx
}

// SignalIndex returns the index of the named signal, or -1.
func (g *STG) SignalIndex(name string) int {
	if i, ok := g.sigByName[name]; ok {
		return i
	}
	return -1
}

// AddTransition adds a transition labeled sig/dir. Multiple transitions of
// the same label get instance suffixes "/1", "/2", ... in their net names.
// An out-of-range signal index panics: indexes come from AddSignal, so a bad
// one is a construction bug.
func (g *STG) AddTransition(sig int, dir Dir) int {
	if sig < 0 || sig >= len(g.Signals) {
		panic(fmt.Sprintf("stg: signal index %d out of range", sig))
	}
	base := g.Signals[sig].Name + dir.String()
	name := base
	for k := 1; g.Net.TransitionIndex(name) >= 0; k++ {
		name = fmt.Sprintf("%s/%d", base, k)
	}
	t := g.Net.AddTransition(name)
	g.Labels = append(g.Labels, Label{Sig: sig, Dir: dir})
	return t
}

// AddDummy adds a λ-transition with the given name.
func (g *STG) AddDummy(name string) int {
	t := g.Net.AddTransition(name)
	g.Labels = append(g.Labels, Label{Sig: -1})
	return t
}

// Rise is shorthand for AddTransition(SignalIndex(name), Rise), declaring
// nothing: the signal must exist.
func (g *STG) Rise(name string) int { return g.byName(name, Rise) }

// Fall is shorthand for AddTransition(SignalIndex(name), Fall).
func (g *STG) Fall(name string) int { return g.byName(name, Fall) }

// byName backs the Rise/Fall construction shorthands; referencing a signal
// that was never declared is a construction bug and panics.
func (g *STG) byName(name string, d Dir) int {
	s := g.SignalIndex(name)
	if s < 0 {
		panic(fmt.Sprintf("stg: unknown signal %q", name))
	}
	return g.AddTransition(s, d)
}

// LabelString renders transition t's label, e.g. "LDS+" or "LDS+/1".
func (g *STG) LabelString(t int) string {
	l := g.Labels[t]
	if l.Sig < 0 {
		return g.Net.Transitions[t].Name
	}
	return g.Net.Transitions[t].Name
}

// TransitionsOf returns all transitions labeled with the given signal.
func (g *STG) TransitionsOf(sig int) []int {
	var out []int
	for t, l := range g.Labels {
		if l.Sig == sig {
			out = append(out, t)
		}
	}
	return out
}

// IsInput reports whether transition t is an input-signal transition.
func (g *STG) IsInput(t int) bool {
	l := g.Labels[t]
	return l.Sig >= 0 && g.Signals[l.Sig].Kind == Input
}

// NonInputSignals returns the indexes of all output and internal signals —
// the ones logic synthesis must implement.
func (g *STG) NonInputSignals() []int {
	var out []int
	for i, s := range g.Signals {
		if s.Kind == Output || s.Kind == Internal {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy.
func (g *STG) Clone() *STG {
	c := &STG{
		Net:       g.Net.Clone(),
		Signals:   append([]Signal(nil), g.Signals...),
		Labels:    append([]Label(nil), g.Labels...),
		sigByName: make(map[string]int, len(g.sigByName)),
	}
	for k, v := range g.sigByName {
		c.sigByName[k] = v
	}
	return c
}

// Validate checks the STG is well formed: labels parallel to transitions,
// every non-dummy label referencing a declared signal, and the net valid.
func (g *STG) Validate() error {
	if len(g.Labels) != len(g.Net.Transitions) {
		return fmt.Errorf("stg: %d labels for %d transitions", len(g.Labels), len(g.Net.Transitions))
	}
	for t, l := range g.Labels {
		if l.Sig >= len(g.Signals) {
			return fmt.Errorf("stg: transition %d references undeclared signal %d", t, l.Sig)
		}
		if l.Sig >= 0 && g.Signals[l.Sig].Kind == Dummy {
			return fmt.Errorf("stg: transition %d labeled with dummy-kind signal", t)
		}
	}
	return g.Net.Validate()
}

// String returns a readable summary.
func (g *STG) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stg %s: %d signals\n", g.Name(), len(g.Signals))
	for _, s := range g.Signals {
		fmt.Fprintf(&b, "  %s %s\n", s.Kind, s.Name)
	}
	b.WriteString(g.Net.String())
	return b.String()
}
