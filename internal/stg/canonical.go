package stg

import (
	"crypto/sha256"
	"encoding/hex"
)

// CanonicalHash returns the hex SHA-256 of the STG's canonical .g rendering
// (WriteG). Two STGs whose canonical forms are byte-identical — in particular
// any two parses of the same canonical output, regardless of line order or
// textual noise in the original source — hash equally, which makes the hash
// usable as a content-addressed cache key: the synthesis daemon keys memoized
// results on it. Signal declaration order is semantically meaningful (it
// fixes state-vector positions and synthesis tie-breaks) and therefore
// contributes to the hash.
func (g *STG) CanonicalHash() (string, error) {
	h := sha256.New()
	if err := g.WriteG(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
