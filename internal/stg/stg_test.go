package stg

import (
	"bytes"
	"strings"
	"testing"
)

func buildToy() *STG {
	g := New("toy")
	g.AddSignal("a", Input)
	g.AddSignal("b", Output)
	ap := g.Rise("a")
	bp := g.Rise("b")
	am := g.Fall("a")
	bm := g.Fall("b")
	g.Net.Chain(ap, bp, am, bm)
	g.Net.Implicit(bm, ap, 1)
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := buildToy()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.SignalIndex("a") != 0 || g.SignalIndex("b") != 1 || g.SignalIndex("zz") != -1 {
		t.Fatal("signal index lookup broken")
	}
	if !g.IsInput(0) {
		t.Fatal("a+ is an input transition")
	}
	if g.IsInput(1) {
		t.Fatal("b+ is not an input transition")
	}
	if got := g.NonInputSignals(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("non-input signals = %v", got)
	}
	if got := g.TransitionsOf(0); len(got) != 2 {
		t.Fatalf("transitions of a = %v", got)
	}
}

func TestDuplicateLabelsGetSuffixes(t *testing.T) {
	g := New("dup")
	g.AddSignal("x", Output)
	t1 := g.Rise("x")
	t2 := g.Rise("x")
	if g.Net.Transitions[t1].Name != "x+" || g.Net.Transitions[t2].Name != "x+/1" {
		t.Fatalf("names: %q, %q", g.Net.Transitions[t1].Name, g.Net.Transitions[t2].Name)
	}
	if g.Labels[t1] != g.Labels[t2] {
		t.Fatal("both instances must carry the same label")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildToy()
	c := g.Clone()
	c.AddSignal("z", Internal)
	c.Rise("z")
	if len(g.Signals) != 2 || len(g.Labels) != 4 {
		t.Fatal("clone leaked into original")
	}
	if c.SignalIndex("z") != 2 {
		t.Fatal("clone signal map not updated")
	}
}

func TestValidateRejectsBadLabels(t *testing.T) {
	g := buildToy()
	g.Labels[0].Sig = 99
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-range signal must fail validation")
	}
}

func TestGRoundTrip(t *testing.T) {
	g := buildToy()
	var buf bytes.Buffer
	if err := g.WriteG(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{".model toy", ".inputs a", ".outputs b", ".graph", ".marking", ".end"} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	g2, err := ParseG(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, text)
	}
	if len(g2.Signals) != 2 || len(g2.Net.Transitions) != 4 {
		t.Fatalf("round trip lost structure: %s", g2)
	}
	// Same number of marked places, same token game length-1 behaviour.
	if g2.Net.InitialMarking().Tokens() != g.Net.InitialMarking().Tokens() {
		t.Fatal("round trip lost marking")
	}
	// Round-trip again and compare text (stable form).
	var buf2 bytes.Buffer
	if err := g2.WriteG(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("write->parse->write not stable:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestParseGExplicitPlacesAndChoice(t *testing.T) {
	src := `
.model choice
.inputs req1 req2
.outputs gnt
.graph
p0 req1+ req2+
req1+ gnt+
req2+ gnt+
gnt+ gnt-
gnt- p0
.marking { p0 }
.end
`
	g, err := ParseG(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	p0 := g.Net.PlaceIndex("p0")
	if p0 < 0 || g.Net.Places[p0].Initial != 1 {
		t.Fatal("explicit place p0 must exist and be marked")
	}
	if got := g.Net.ChoicePlaces(); len(got) != 1 || got[0] != p0 {
		t.Fatalf("choice places = %v", got)
	}
	if g.Net.TransitionIndex("req1+") < 0 || g.Net.TransitionIndex("gnt-") < 0 {
		t.Fatal("transitions missing")
	}
}

func TestParseGInstanceSuffixAndDummy(t *testing.T) {
	src := `
.model inst
.inputs a
.outputs x
.dummy eps
.graph
a+ x+ x+/1
x+ eps
x+/1 eps
eps a-
a- a+
.marking { <a-,a+> }
.end
`
	g, err := ParseG(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	i1, i2 := g.Net.TransitionIndex("x+"), g.Net.TransitionIndex("x+/1")
	if i1 < 0 || i2 < 0 {
		t.Fatal("instance-suffixed transitions missing")
	}
	if g.Labels[i1] != g.Labels[i2] {
		t.Fatal("x+ and x+/1 must carry the same label")
	}
	d := g.Net.TransitionIndex("eps")
	if d < 0 || g.Labels[d].Sig != -1 {
		t.Fatal("dummy transition must have Sig=-1")
	}
	if g.Net.InitialMarking().Tokens() != 1 {
		t.Fatal("implicit-place marking lost")
	}
}

func TestParseGErrors(t *testing.T) {
	cases := []string{
		".model m\n.inputs a\n.graph\np q\n.end\n",                      // place->place arc
		".model m\n.inputs a a\n.graph\n.end\n",                         // duplicate signal
		".model m\n.inputs a\n.graph\na+ a-\n.marking { nope }\n.end\n", // unknown marked place
		"stray line\n", // text outside .graph
	}
	for i, src := range cases {
		if _, err := ParseG(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestFromWaveformRejectsUnknownSignal(t *testing.T) {
	w := Waveform{
		Name:    "bad",
		Signals: []Signal{{Name: "a", Kind: Input}},
		Events:  []WaveEvent{{Signal: "zz", Dir: Rise}},
	}
	if _, err := FromWaveform(w); err == nil {
		t.Fatal("unknown signal must be rejected")
	}
}

func TestFromWaveformTokenPlacement(t *testing.T) {
	w := Waveform{
		Name: "loop",
		Signals: []Signal{
			{Name: "a", Kind: Input}, {Name: "b", Kind: Output},
		},
		Events: []WaveEvent{
			{Signal: "a", Dir: Rise}, {Signal: "b", Dir: Rise},
			{Signal: "a", Dir: Fall}, {Signal: "b", Dir: Fall},
		},
		Causality: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	g, err := FromWaveform(w)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Net.InitialMarking()
	if m.Tokens() != 1 {
		t.Fatalf("exactly the back-arc should carry a token, marking %v", m)
	}
	en := g.Net.EnabledList(m)
	if len(en) != 1 || g.Net.Transitions[en[0]].Name != "a+" {
		t.Fatalf("a+ must be the only enabled transition, got %v", en)
	}
}

func TestKindAndDirStrings(t *testing.T) {
	if Input.String() != "input" || Output.String() != "output" ||
		Internal.String() != "internal" || Dummy.String() != "dummy" {
		t.Fatal("Kind.String broken")
	}
	if Rise.String() != "+" || Fall.String() != "-" || Toggle.String() != "~" {
		t.Fatal("Dir.String broken")
	}
}
