package techmap_test

import (
	"strings"
	"testing"

	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/techmap"
	"repro/internal/vme"
)

// join3 is a three-way synchronizer: z rises after all of a,b,c rose and
// falls after all fell — a C-element with three inputs. Its gC implementation
// has 3-literal set/reset networks, and the extracted decomposition wires
// are acknowledged by z itself, so two-input mapping must succeed.
func join3(t testing.TB) *stg.STG {
	t.Helper()
	g := stg.New("join3")
	for _, in := range []string{"a", "b", "c"} {
		g.AddSignal(in, stg.Input)
	}
	g.AddSignal("z", stg.Output)
	n := g.Net
	zp := g.Rise("z")
	zm := g.Fall("z")
	for _, in := range []string{"a", "b", "c"} {
		ip := g.Rise(in)
		im := g.Fall(in)
		n.Implicit(ip, zp, 0)
		n.Implicit(zp, im, 0)
		n.Implicit(im, zm, 0)
		n.Implicit(zm, ip, 1)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMapGCJoin3: positive latch decomposition — the 3-input set/reset
// networks break into two-input gates and stay speed independent.
func TestMapGCJoin3(t *testing.T) {
	spec := join3(t)
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, logic.GeneralizedC)
	if err != nil {
		t.Fatal(err)
	}
	if nl.MaxFanIn() < 3 {
		t.Fatalf("join3 gC must have a 3-input network, got %d:\n%s", nl.MaxFanIn(), nl.Equations())
	}
	mapped, err := techmap.Map(nl, spec, techmap.Options{MaxFanIn: 2})
	if err != nil {
		t.Fatalf("join3 gC mapping must succeed: %v\n%s", err, nl.Equations())
	}
	if mapped.MaxFanIn() > 2 {
		t.Fatalf("fan-in %d:\n%s", mapped.MaxFanIn(), mapped.Equations())
	}
	res, err := sim.Verify(mapped, spec, sim.Options{})
	if err != nil || !res.OK() {
		t.Fatalf("mapped join3 must be SI: %v %v", err, res)
	}
	hasLatch := false
	for _, g := range mapped.Gates {
		if g.Kind == logic.CElem {
			hasLatch = true
		}
	}
	if !hasLatch {
		t.Fatal("the C-element must survive decomposition")
	}
}

// TestMapLatchLimitation documents the known hard case: the read/write
// controller's LDS latch networks cannot be decomposed by resubstitution
// alone — the extracted wire would need speed-independent acknowledgment
// (the problem of references [4]/[5]). The mapper must fail with a clean
// diagnostic, never return a hazardous netlist.
func TestMapLatchLimitation(t *testing.T) {
	sol, err := encoding.SolveCSC(vme.ReadWriteSTG(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := reach.BuildSG(sol.STG, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, style := range []logic.Style{logic.GeneralizedC, logic.StandardC} {
		nl, err := logic.Synthesize(sg, style)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := techmap.Map(nl, sol.STG, techmap.Options{MaxFanIn: 2})
		if err != nil {
			if !strings.Contains(err.Error(), "techmap:") {
				t.Fatalf("%v: unhelpful diagnostic: %v", style, err)
			}
			continue // documented limitation
		}
		// If it does succeed, the result must verify.
		res, err := sim.Verify(mapped, sol.STG, sim.Options{})
		if err != nil || !res.OK() {
			t.Fatalf("%v: mapper returned a non-SI netlist: %v %v", style, err, res)
		}
	}
}
