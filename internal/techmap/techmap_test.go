package techmap_test

import (
	"strings"
	"testing"

	"repro/internal/boolmin"
	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/techmap"
	"repro/internal/vme"
)

func cscSpec(t testing.TB) *stg.STG {
	t.Helper()
	g := vme.ReadSTG()
	spec, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func complexNetlist(t testing.TB, spec *stg.STG) *logic.Netlist {
	t.Helper()
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestFig9Map is the algorithmic side of E-F9: mapping the READ-cycle
// complex-gate circuit into a two-input library must find a hazard-free
// decomposition (the Figure 9a shape: a new wire acknowledged by multiple
// gates), verified speed-independent.
func TestFig9Map(t *testing.T) {
	spec := cscSpec(t)
	nl := complexNetlist(t, spec)
	if nl.MaxFanIn() <= 2 {
		t.Fatalf("csc0 gate must exceed 2 inputs before mapping, got %d", nl.MaxFanIn())
	}
	mapped, err := techmap.Map(nl, spec, techmap.Options{MaxFanIn: 2})
	if err != nil {
		t.Fatalf("mapping failed: %v", err)
	}
	if mapped.MaxFanIn() > 2 {
		t.Fatalf("mapped netlist fan-in %d > 2:\n%s", mapped.MaxFanIn(), mapped.Equations())
	}
	// A decomposition wire was added.
	if mapped.SignalIndex("map0") < 0 {
		t.Fatalf("expected a map0 wire:\n%s", mapped.Equations())
	}
	// The result is speed independent.
	res, err := sim.Verify(mapped, spec, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("mapped circuit must be SI: %v", res.Violations)
	}
	// Multiple acknowledgment: map0 feeds at least two gates.
	w := mapped.SignalIndex("map0")
	users := 0
	for _, g := range mapped.Gates {
		for _, v := range g.F.Support() {
			if v == w {
				users++
				break
			}
		}
	}
	if users < 2 {
		t.Fatalf("map0 must be acknowledged by multiple gates, used by %d:\n%s",
			users, mapped.Equations())
	}
}

func TestMapNoopWhenWithinBudget(t *testing.T) {
	spec := cscSpec(t)
	nl := complexNetlist(t, spec)
	mapped, err := techmap.Map(nl, spec, techmap.Options{MaxFanIn: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(mapped.Gates) != len(nl.Gates) {
		t.Fatal("within-budget netlist must be unchanged")
	}
}

func TestMapRejectsBadInput(t *testing.T) {
	spec := cscSpec(t)
	nl := complexNetlist(t, spec)
	if _, err := techmap.Map(nl, spec, techmap.Options{MaxFanIn: 1}); err == nil {
		t.Fatal("fan-in 1 must be rejected")
	}
	// A netlist that is not SI must be rejected.
	bad := complexNetlist(t, spec)
	for i := range bad.Gates {
		if bad.Signals[bad.Gates[i].Output] == "DTACK" {
			bad.Gates[i].F = boolmin.Cover{N: len(bad.Signals), Cubes: []boolmin.Cube{
				boolmin.FullCube().WithLiteral(bad.SignalIndex("LDS"), true)}}
		}
	}
	if _, err := techmap.Map(bad, spec, techmap.Options{MaxFanIn: 2}); err == nil ||
		!strings.Contains(err.Error(), "not SI") {
		t.Fatalf("non-SI input must be rejected, got %v", err)
	}
}
