// Package techmap implements hazard-aware logic decomposition and technology
// mapping (Section 3.4, reference [5]): breaking complex gates into a
// limited-fan-in library without introducing hazards. The algorithm:
//
//  1. pick a gate whose fan-in exceeds the limit;
//  2. extract a decomposition candidate (an algebraic kernel, or a cube/OR
//     split when no kernel exists) into a new internal wire;
//  3. resubstitute the new wire into other gates where it is functionally
//     equivalent on the reachable care set — the "multiple acknowledgment"
//     that makes decompositions like Figure 9a hazard-free;
//  4. verify speed-independence of the trial netlist against the spec; on
//     failure try the next candidate.
//
// Candidates that survive verification are committed; the loop repeats until
// every gate fits the fan-in budget.
package techmap

import (
	"fmt"
	"sort"

	"repro/internal/boolmin"
	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/stg"
)

// Options configure mapping.
type Options struct {
	// MaxFanIn is the gate input budget (e.g. 2 for Figure 9).
	MaxFanIn int
	// MaxNewSignals bounds decomposition depth (default 8).
	MaxNewSignals int
	// Verify bounds for each trial.
	Sim sim.Options
}

func (o Options) maxNew() int {
	if o.MaxNewSignals > 0 {
		return o.MaxNewSignals
	}
	return 16
}

// Map decomposes nl (complex-gate style, combinational gates) into gates of
// at most MaxFanIn inputs, preserving speed-independence against spec. The
// input netlist must itself verify.
func Map(nl *logic.Netlist, spec *stg.STG, opts Options) (*logic.Netlist, error) {
	if opts.MaxFanIn < 2 {
		return nil, fmt.Errorf("techmap: fan-in limit must be at least 2")
	}
	res, err := sim.Verify(nl, spec, opts.Sim)
	if err != nil {
		return nil, err
	}
	if !res.OK() {
		return nil, fmt.Errorf("techmap: input netlist is not SI: %v", res.Violations)
	}
	cur := cloneNetlist(nl)
	for round := 0; round < opts.maxNew(); round++ {
		gi := worstGate(cur, opts.MaxFanIn)
		if gi < 0 {
			return cur, nil // everything fits
		}
		next, err := decomposeOnce(cur, gi, spec, opts, round)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	if worstGate(cur, opts.MaxFanIn) >= 0 {
		return nil, fmt.Errorf("techmap: fan-in target not reached within %d new signals", opts.maxNew())
	}
	return cur, nil
}

// worstGate returns the index of the gate with the largest over-budget
// network fan-in, or -1. Latch set/reset networks count separately (they
// are distinct transistor stacks).
func worstGate(nl *logic.Netlist, max int) int {
	worst, worstFan := -1, max
	for i := range nl.Gates {
		fan := 0
		for nw := 0; nw < 3; nw++ {
			if n := len(network(&nl.Gates[i], nw).Support()); n > fan {
				fan = n
			}
		}
		if fan > worstFan {
			worst, worstFan = i, fan
		}
	}
	return worst
}

func gateSupport(g logic.Gate) []int {
	sup := map[int]bool{}
	for _, cv := range []boolmin.Cover{g.F, g.Set, g.Reset} {
		for _, v := range cv.Support() {
			sup[v] = true
		}
	}
	var out []int
	for v := range sup {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// network selects one cover of a gate: 0 = F, 1 = Set, 2 = Reset.
func network(g *logic.Gate, which int) *boolmin.Cover {
	switch which {
	case 1:
		return &g.Set
	case 2:
		return &g.Reset
	default:
		return &g.F
	}
}

// widestNetwork returns the index of the gate's widest-support network.
func widestNetwork(g *logic.Gate) int {
	best, bestN := 0, len(g.F.Support())
	if n := len(g.Set.Support()); n > bestN {
		best, bestN = 1, n
	}
	if n := len(g.Reset.Support()); n > bestN {
		best = 2
	}
	return best
}

// decomposeOnce extracts one new wire for gate gi, trying candidates until
// one verifies. For latch gates (gC / RS) the widest of the set/reset
// networks is decomposed.
func decomposeOnce(nl *logic.Netlist, gi int, spec *stg.STG, opts Options, round int) (*logic.Netlist, error) {
	g := nl.Gates[gi]
	which := 0
	if g.Kind != logic.Comb {
		which = widestNetwork(&g)
	}
	target := *network(&g, which)
	cands := candidates(target, opts.MaxFanIn)
	if len(cands) == 0 {
		return nil, fmt.Errorf("techmap: no decomposition candidate for %s = %s",
			nl.Signals[g.Output], target.Expr(nl.Signals))
	}
	care, err := reachableCare(nl, spec)
	if err != nil {
		return nil, err
	}
	var lastViol string
	wName := fmt.Sprintf("map%d", round)

	// Latch gates first try the classic tree decomposition: extract a
	// 2-input C-element for a variable pair appearing positively in the set
	// network and negatively in the reset network. The sub-element is
	// stateful, so both edges of the extracted pair are acknowledged by
	// construction.
	if g.Kind == logic.CElem || g.Kind == logic.RSLatch {
		for _, pair := range cPairCandidates(&g) {
			trial, ok := applyCPair(nl, gi, pair[0], pair[1], wName, g.Kind)
			if !ok {
				continue
			}
			res, err := sim.Verify(trial, spec, opts.Sim)
			if err != nil {
				return nil, err
			}
			if res.OK() {
				return trial, nil
			}
			if len(res.Violations) > 0 {
				lastViol = res.Violations[0].String()
			}
		}
	}

	for _, div := range cands {
		trial, ok := applyCandidate(nl, gi, which, div, wName, care)
		if !ok {
			continue
		}
		for _, t2 := range withAckVariants(trial, wName) {
			res, err := sim.Verify(t2, spec, opts.Sim)
			if err != nil {
				return nil, err
			}
			if res.OK() {
				return t2, nil
			}
			if len(res.Violations) > 0 {
				lastViol = res.Violations[0].String()
			}
		}
	}
	return nil, fmt.Errorf("techmap: no hazard-free decomposition found for %s (last: %s)",
		nl.Signals[g.Output], lastViol)
}

// cPairCandidates finds variable pairs (x,y) that appear together positively
// in some set cube and negatively in some reset cube — the extractable
// sub-C-elements.
func cPairCandidates(g *logic.Gate) [][2]int {
	posPairs := map[[2]int]bool{}
	for _, c := range g.Set.Cubes {
		vars := positiveVars(c)
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				posPairs[[2]int{vars[i], vars[j]}] = true
			}
		}
	}
	var out [][2]int
	seen := map[[2]int]bool{}
	for _, c := range g.Reset.Cubes {
		vars := negativeVars(c)
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				key := [2]int{vars[i], vars[j]}
				if posPairs[key] && !seen[key] {
					seen[key] = true
					out = append(out, key)
				}
			}
		}
	}
	return out
}

func positiveVars(c boolmin.Cube) []int {
	var out []int
	for v := 0; v < 64; v++ {
		bit := uint64(1) << uint(v)
		if c.Care&bit != 0 && c.Val&bit != 0 {
			out = append(out, v)
		}
	}
	return out
}

func negativeVars(c boolmin.Cube) []int {
	var out []int
	for v := 0; v < 64; v++ {
		bit := uint64(1) << uint(v)
		if c.Care&bit != 0 && c.Val&bit == 0 {
			out = append(out, v)
		}
	}
	return out
}

// applyCPair extracts u = C(set: x·y, reset: x'·y') and substitutes u for
// x·y in the target's set cubes and u' for x'·y' in its reset cubes.
func applyCPair(nl *logic.Netlist, gi, x, y int, wName string, kind logic.GateKind) (*logic.Netlist, bool) {
	trial := cloneNetlist(nl)
	if trial.SignalIndex(wName) >= 0 {
		return nil, false
	}
	u := trial.AddSignal(wName, stg.Internal)
	n := len(trial.Signals)
	for i := range trial.Gates {
		trial.Gates[i].F.N = n
		trial.Gates[i].Set.N = n
		trial.Gates[i].Reset.N = n
	}
	set := boolmin.Cover{N: n, Cubes: []boolmin.Cube{
		boolmin.FullCube().WithLiteral(x, true).WithLiteral(y, true)}}
	reset := boolmin.Cover{N: n, Cubes: []boolmin.Cube{
		boolmin.FullCube().WithLiteral(x, false).WithLiteral(y, false)}}
	trial.Gates = append(trial.Gates, logic.Gate{Kind: kind, Output: u, Set: set, Reset: reset})

	tg := &trial.Gates[gi]
	xb, yb := uint64(1)<<uint(x), uint64(1)<<uint(y)
	progressed := false
	for ci, c := range tg.Set.Cubes {
		if c.Care&xb != 0 && c.Val&xb != 0 && c.Care&yb != 0 && c.Val&yb != 0 {
			c.Care &^= xb | yb
			c.Val &^= xb | yb
			tg.Set.Cubes[ci] = c.WithLiteral(u, true)
			progressed = true
		}
	}
	for ci, c := range tg.Reset.Cubes {
		if c.Care&xb != 0 && c.Val&xb == 0 && c.Care&yb != 0 && c.Val&yb == 0 {
			c.Care &^= xb | yb
			c.Val &^= xb | yb
			tg.Reset.Cubes[ci] = c.WithLiteral(u, false)
			progressed = true
		}
	}
	if !progressed {
		return nil, false
	}
	if err := trial.Validate(); err != nil {
		return nil, false
	}
	return trial, true
}

// withAckVariants yields the trial netlist plus acknowledgment-forcing
// variants: versions where other networks redundantly include the new wire's
// literal (tautology-preserving), so that the wire's transitions are observed
// before dependent state changes — the "multiple acknowledgment" repair for
// wires whose reset phase would otherwise go unobserved.
func withAckVariants(trial *logic.Netlist, wName string) []*logic.Netlist {
	out := []*logic.Netlist{trial}
	w := trial.SignalIndex(wName)
	if w < 0 {
		return out
	}
	var divisor boolmin.Cover
	for _, g := range trial.Gates {
		if g.Output == w {
			divisor = g.F
		}
	}
	n := len(trial.Signals)
	// Collect per-network tautology-preserving extensions.
	type ext struct {
		gate, which int
		cover       boolmin.Cover
	}
	var exts []ext
	for gi := range trial.Gates {
		if trial.Gates[gi].Output == w {
			continue
		}
		for nw := 0; nw < 3; nw++ {
			cv := network(&trial.Gates[gi], nw)
			if len(cv.Cubes) == 0 || cubesUse(cv, w) {
				continue
			}
			for _, pol := range []bool{true, false} {
				var cubes []boolmin.Cube
				for _, c := range cv.Cubes {
					cubes = append(cubes, c.WithLiteral(w, pol))
				}
				cand := boolmin.Cover{N: n, Cubes: cubes}
				if substitutedEqual(*cv, cand, w, divisor, n) {
					exts = append(exts, ext{gate: gi, which: nw, cover: cand})
					break
				}
			}
		}
	}
	// One variant per single extension, plus the everything-extended one.
	for _, e := range exts {
		v := cloneNetlist(trial)
		*network(&v.Gates[e.gate], e.which) = e.cover.Clone()
		out = append(out, v)
	}
	if len(exts) > 1 {
		v := cloneNetlist(trial)
		for _, e := range exts {
			*network(&v.Gates[e.gate], e.which) = e.cover.Clone()
		}
		out = append(out, v)
	}
	return out
}

func cubesUse(cv *boolmin.Cover, w int) bool {
	for _, c := range cv.Cubes {
		if c.Care&(1<<uint(w)) != 0 {
			return true
		}
	}
	return false
}

// candidates generates divisor covers: algebraic kernels first (best gain
// first), then cube splits (pairs of literals of the widest cube) and OR
// splits (pairs of cubes).
func candidates(f boolmin.Cover, maxFanIn int) []boolmin.Cover {
	var out []boolmin.Cover
	type scored struct {
		cv   boolmin.Cover
		gain int
	}
	var ks []scored
	for _, k := range f.Kernels() {
		if len(k.Kernel.Cubes) < 2 {
			continue
		}
		q, r := f.Divide(k.Kernel)
		if len(q.Cubes) == 0 {
			continue
		}
		gain := f.Literals() - (k.Kernel.Literals() + q.Literals() + len(q.Cubes) + r.Literals())
		ks = append(ks, scored{cv: k.Kernel, gain: gain})
	}
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].gain > ks[j].gain })
	for _, s := range ks {
		out = append(out, s.cv)
	}
	// Single-cube extraction: pull a whole product out as a wire
	// (f = A + B·C  →  w = B·C, f = A + w).
	if len(f.Cubes) > 1 {
		for _, c := range f.Cubes {
			if c.Literals() >= 2 {
				out = append(out, boolmin.Cover{N: f.N, Cubes: []boolmin.Cube{c}})
			}
		}
	}
	// Cube split: the widest cube's first literal pairs.
	widest := -1
	for i, c := range f.Cubes {
		if widest < 0 || c.Literals() > f.Cubes[widest].Literals() {
			widest = i
		}
	}
	if widest >= 0 && f.Cubes[widest].Literals() > maxFanIn {
		lits := literalsOf(f.Cubes[widest], f.N)
		for i := 0; i < len(lits) && i < 4; i++ {
			for j := i + 1; j < len(lits) && j < 5; j++ {
				cv := boolmin.Cover{N: f.N, Cubes: []boolmin.Cube{
					boolmin.FullCube().
						WithLiteral(lits[i].v, lits[i].pos).
						WithLiteral(lits[j].v, lits[j].pos)}}
				out = append(out, cv)
			}
		}
	}
	// OR split: pairs of cubes.
	if len(f.Cubes) > maxFanIn {
		for i := 0; i < len(f.Cubes) && i < 4; i++ {
			for j := i + 1; j < len(f.Cubes) && j < 5; j++ {
				out = append(out, boolmin.Cover{N: f.N, Cubes: []boolmin.Cube{f.Cubes[i], f.Cubes[j]}})
			}
		}
	}
	return out
}

type literal struct {
	v   int
	pos bool
}

func literalsOf(c boolmin.Cube, n int) []literal {
	var out []literal
	for v := 0; v < n; v++ {
		bit := uint64(1) << uint(v)
		if c.Care&bit != 0 {
			out = append(out, literal{v: v, pos: c.Val&bit != 0})
		}
	}
	return out
}

// reachableCare returns the reachable codes of the closed system over the
// netlist's current signal space (spec signals from the spec SG, added wires
// evaluated combinationally).
func reachableCare(nl *logic.Netlist, spec *stg.STG) ([]uint64, error) {
	sg, err := sim.StateGraph(nl, spec, sim.Options{})
	if err != nil {
		return nil, err
	}
	seen := map[uint64]bool{}
	var out []uint64
	for _, s := range sg.States {
		c := uint64(s.Code)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out, nil
}

// applyCandidate builds the trial netlist: new wire w = div, the selected
// network of the target gate rewritten by algebraic division, and every
// other combinational network resubstituted with w where a w-using cover of
// no greater cost exists on the care set.
func applyCandidate(nl *logic.Netlist, gi, which int, div boolmin.Cover, wName string, care []uint64) (*logic.Netlist, bool) {
	trial := cloneNetlist(nl)
	if trial.SignalIndex(wName) >= 0 {
		return nil, false
	}
	w := trial.AddSignal(wName, stg.Internal)
	n := len(trial.Signals)
	// Re-embed all covers into the widened space.
	for i := range trial.Gates {
		trial.Gates[i].F.N = n
		trial.Gates[i].Set.N = n
		trial.Gates[i].Reset.N = n
	}
	divW := boolmin.Cover{N: n, Cubes: append([]boolmin.Cube(nil), div.Cubes...)}
	trial.Gates = append(trial.Gates, logic.Gate{Kind: logic.Comb, Output: w, F: divW})

	// Extended care set: w's value follows its function.
	extCare := make([]uint64, len(care))
	for i, c := range care {
		if divW.Eval(c) {
			c |= 1 << uint(w)
		}
		extCare[i] = c
	}

	// Rewrite the target network: algebraic division, else Boolean
	// resubstitution.
	target := network(&trial.Gates[gi], which)
	oldTarget := target.Clone()
	q, r := target.Divide(divW)
	if len(q.Cubes) > 0 {
		var cubes []boolmin.Cube
		for _, qc := range q.Cubes {
			cubes = append(cubes, qc.WithLiteral(w, true))
		}
		cubes = append(cubes, r.Cubes...)
		*target = boolmin.Cover{N: n, Cubes: cubes}
	} else if sub, ok := resubstitute(*target, w, extCare, n, true); ok &&
		substitutedEqual(oldTarget, sub, w, divW, n) {
		*target = sub
	} else {
		return nil, false
	}
	// Progress: the rewritten network's support must strictly shrink.
	oldGate := nl.Gates[gi]
	if len(target.Support()) >= len(network(&oldGate, which).Support()) {
		return nil, false
	}

	// Resubstitute other combinational networks (multiple acknowledgment):
	// accept w-using covers of no greater literal cost.
	for i := range trial.Gates {
		if trial.Gates[i].Output == w {
			continue
		}
		for nw := 0; nw < 3; nw++ {
			if i == gi && nw == which {
				continue
			}
			cv := network(&trial.Gates[i], nw)
			if len(cv.Cubes) == 0 {
				continue
			}
			if sub, ok := resubstitute(*cv, w, extCare, n, false); ok &&
				sub.Literals() <= cv.Literals() &&
				substitutedEqual(*cv, sub, w, divW, n) {
				*cv = sub
			}
		}
	}
	if err := trial.Validate(); err != nil {
		return nil, false
	}
	return trial, true
}

// substitutedEqual checks new[w := divisor] ≡ old over the full Boolean
// space of the other variables: the soundness condition that makes a
// resubstitution safe even in transient states where downstream networks
// evaluate mid-switch vectors. Enumerates 2^(n-1); callers keep n small.
func substitutedEqual(old, new boolmin.Cover, w int, divisor boolmin.Cover, n int) bool {
	if n > 22 {
		return false // refuse rather than enumerate
	}
	wBit := uint64(1) << uint(w)
	total := uint64(1) << uint(n)
	for v := uint64(0); v < total; v++ {
		if v&wBit != 0 {
			continue // enumerate over w=0 slots; w is forced below
		}
		vv := v
		if divisor.Eval(v) {
			vv |= wBit
		}
		if new.Eval(vv) != old.Eval(vv) {
			return false
		}
	}
	return true
}

// resubstitute re-minimizes cover f over the extended care set, biasing the
// result toward cubes that use wire w: candidate implicants are on-minterm
// expansions against the reachable off-set, once forcing the w literal to
// stay and once unconstrained. When force is set, failure to use w rejects
// the result. Complexity is |care|²·n — no 2^n enumeration.
func resubstitute(f boolmin.Cover, w int, care []uint64, n int, force bool) (boolmin.Cover, bool) {
	var on, off []uint64
	for _, c := range care {
		if f.Eval(c) {
			on = append(on, c)
		} else {
			off = append(off, c)
		}
	}
	if len(on) == 0 {
		return boolmin.Cover{N: n}, !force
	}
	seen := map[boolmin.Cube]bool{}
	var cands []boolmin.Cube
	for _, m := range on {
		for _, keep := range []uint64{1 << uint(w), 0} {
			c := boolmin.Expand(m, off, n, keep)
			if !seen[c] {
				seen[c] = true
				cands = append(cands, c)
			}
		}
	}
	// Prefer w-using cubes, then fewer literals.
	sort.SliceStable(cands, func(i, j int) bool {
		iw := cands[i].Care&(1<<uint(w)) != 0
		jw := cands[j].Care&(1<<uint(w)) != 0
		if iw != jw {
			return iw
		}
		return cands[i].Literals() < cands[j].Literals()
	})
	var cover []boolmin.Cube
	remaining := map[uint64]bool{}
	for _, m := range on {
		remaining[m] = true
	}
	for _, p := range cands {
		if len(remaining) == 0 {
			break
		}
		gain := 0
		for m := range remaining {
			if p.Contains(m) {
				gain++
			}
		}
		if gain > 0 {
			cover = append(cover, p)
			for m := range remaining {
				if p.Contains(m) {
					delete(remaining, m)
				}
			}
		}
	}
	if len(remaining) > 0 {
		return boolmin.Cover{}, false
	}
	out := boolmin.Cover{N: n, Cubes: cover}
	if force {
		uses := false
		for _, c := range cover {
			if c.Care&(1<<uint(w)) != 0 {
				uses = true
			}
		}
		if !uses {
			return boolmin.Cover{}, false
		}
	}
	return out, true
}

func cloneNetlist(nl *logic.Netlist) *logic.Netlist {
	c := &logic.Netlist{Name: nl.Name}
	for i, s := range nl.Signals {
		c.AddSignal(s, nl.Kinds[i])
	}
	for _, g := range nl.Gates {
		c.Gates = append(c.Gates, logic.Gate{
			Kind:   g.Kind,
			Output: g.Output,
			F:      g.F.Clone(),
			Set:    g.Set.Clone(),
			Reset:  g.Reset.Clone(),
		})
	}
	return c
}
