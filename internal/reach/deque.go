package reach

import (
	"sync/atomic"

	"repro/internal/petri"
)

// wsTask is one unit of work-stealing exploration: a discovered marking
// and its provisional visited-table id. Tasks carry their marking so
// thieves never read a shared marking store — the deque slot's atomic
// pointer is the publication edge for the task's fields.
type wsTask struct {
	m  petri.Marking
	id int32
}

// wsDeque is a Chase-Lev work-stealing deque (Chase & Lev, "Dynamic
// Circular Work-Stealing Deque", SPAA 2005). The owning worker pushes and
// pops at the bottom; thieves steal from the top, racing each other and
// the owner's last-element pop with a CAS on top. Go's sync/atomic
// operations are sequentially consistent, which subsumes the fences of the
// published algorithm.
//
// Slots hold *wsTask so a stolen task's fields are published by the slot
// store/load pair itself; a slot for index i is never overwritten while i
// lies in [top, bottom), and growth copies the live window into a doubled
// ring without mutating the old one, so a thief validated by its CAS
// always read a coherent task.
type wsDeque struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[wsRing]
}

type wsRing struct {
	mask  int64
	slots []atomic.Pointer[wsTask]
}

const initialDequeSize = 256

func newWSDeque() *wsDeque {
	d := &wsDeque{}
	d.ring.Store(newWSRing(initialDequeSize))
	return d
}

func newWSRing(size int64) *wsRing {
	return &wsRing{mask: size - 1, slots: make([]atomic.Pointer[wsTask], size)}
}

// push appends t at the bottom, growing the ring when full. Owner-only.
func (d *wsDeque) push(t *wsTask) {
	b := d.bottom.Load()
	top := d.top.Load()
	r := d.ring.Load()
	if b-top >= int64(len(r.slots)) {
		nr := newWSRing(int64(len(r.slots)) * 2)
		for i := top; i < b; i++ {
			nr.slots[i&nr.mask].Store(r.slots[i&r.mask].Load())
		}
		d.ring.Store(nr)
		r = nr
	}
	r.slots[b&r.mask].Store(t)
	d.bottom.Store(b + 1)
}

// pop removes and returns the bottom task, or nil when the deque is empty
// or a thief won the race for the last element. Owner-only.
func (d *wsDeque) pop() *wsTask {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Already empty; restore the canonical empty shape.
		d.bottom.Store(t)
		return nil
	}
	task := r.slots[b&r.mask].Load()
	if b > t {
		return task
	}
	// Last element: race the thieves via top.
	if !d.top.CompareAndSwap(t, t+1) {
		task = nil
	}
	d.bottom.Store(t + 1)
	return task
}

// steal takes the top task, or returns nil when the deque looks empty or
// the CAS lost to the owner or another thief.
func (d *wsDeque) steal() *wsTask {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	r := d.ring.Load()
	task := r.slots[t&r.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return task
}
