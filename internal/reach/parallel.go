package reach

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/shardset"
)

// exploreParallel is the parallel explicit engine: work-stealing frontier
// expansion over the lock-free sharded visited table. Each worker owns a
// Chase-Lev deque; a worker that discovers a new marking claims its dense
// id from the visited table (a CAS, no lock), pushes the task onto its own
// deque, and idle workers steal from the top of their siblings'. There are
// no level barriers: a worker stalls only when the whole system is out of
// work. Termination is detected by an in-flight task counter — incremented
// before every push, decremented after the task's expansion has recorded
// its edges — reaching zero.
//
// The set of states and edges discovered is schedule-independent; only the
// provisional state ids are not. A deterministic post-pass renumbers
// states in canonical sequential-BFS order (each expansion records its
// steps in ascending transition order), making the returned Graph
// bit-identical to the sequential explorer's for every worker count.
//
// MaxStates is enforced by the visited table itself: a refused insertion
// proves the full state count exceeds the cap, so the state-limit error is
// deterministic too. On a limit trip the canonical partial graph — exactly
// MaxStates states, bit-identical to the sequential explorer's partial
// result — is re-derived by a sequential pass, which the cap itself keeps
// cheap.
//
// Workers are panic-safe: a panic in any worker is recovered into a
// budget.ErrInternal carrying the stack, sibling workers stop at their
// next task, and the one error is returned instead of crashing the
// process. Cancellation (opts.Budget) is polled, amortized, once per task
// expansion.
func exploreParallel(n *petri.Net, opts Options, workers int, sp *obs.Span) (*Graph, error) {
	init := n.InitialMarking()
	if opts.RequireSafe && !init.Safe() {
		return nil, fmt.Errorf("%w: initial marking %s", ErrUnsafe, init.Format(n))
	}
	maxStates := opts.maxStates()
	visited := shardset.NewLimited(4*workers, maxStates)
	visited.Add(init.Key()) // id 0; maxStates ≥ 1 always admits it

	type pstep struct {
		t  int
		to int32
	}
	// Per-worker append-only logs, merged after the join: the markings a
	// worker inserted and the out-edges of the tasks it expanded. Every
	// provisional id is inserted exactly once and every task is expanded
	// exactly once (the deques hand each task to one worker), so the merge
	// writes every provisional slot exactly once.
	type expansion struct {
		from  int32
		steps []pstep
	}
	type stateRec struct {
		id int32
		m  petri.Marking
	}

	deques := make([]*wsDeque, workers)
	for w := range deques {
		deques[w] = newWSDeque()
	}
	edgeLogs := make([][]expansion, workers)
	stateLogs := make([][]stateRec, workers)
	stealCounts := make([]int64, workers)
	expandCounts := make([]int64, workers)
	errs := make([]error, workers)

	// stop makes sibling workers bail out at their next task after a
	// panic, error or limit trip; it carries no error itself. inFlight is
	// the termination detector: tasks pushed but not yet fully expanded.
	var (
		stop     atomic.Bool
		limitHit atomic.Bool
		inFlight atomic.Int64
	)
	inFlight.Store(1)
	deques[0].push(&wsTask{m: init, id: 0})

	hooked := opts.Budget.Hooked()
	reg := sp.Registry()
	checks := reg.Counter("reach.budget_checks")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsp := sp.ChildLane("worker:reach-"+strconv.Itoa(w+1), w+1)
			defer func() {
				if r := recover(); r != nil {
					errs[w] = budget.Internal(r, debug.Stack())
					stop.Store(true)
				}
				if wsp != nil {
					wsp.Attr("expanded", strconv.FormatInt(expandCounts[w], 10))
					wsp.Attr("steals", strconv.FormatInt(stealCounts[w], 10))
					wsp.End()
				}
			}()
			my := deques[w]
			idle := 0
			for !stop.Load() {
				tk := my.pop()
				if tk == nil {
					for i := 1; i < workers && tk == nil; i++ {
						tk = deques[(w+i)%workers].steal()
					}
					if tk == nil {
						if inFlight.Load() == 0 {
							return
						}
						// Out of work but not done: back off gently, then
						// harder, so idle thieves do not starve the workers
						// that still hold tasks.
						idle++
						if idle > 128 {
							time.Sleep(5 * time.Microsecond)
						} else {
							runtime.Gosched()
						}
						continue
					}
					stealCounts[w]++
				}
				idle = 0
				expandCounts[w]++
				if hooked || expandCounts[w]%budget.CheckEvery == 0 {
					checks.Inc()
					if err := opts.Budget.Check("reach.parallel.worker"); err != nil {
						errs[w] = err
						stop.Store(true)
						return
					}
				}
				m := tk.m
				var steps []pstep
				for t := 0; t < len(n.Transitions); t++ {
					if !n.Enabled(m, t) {
						continue
					}
					next := n.Fire(m, t)
					if opts.RequireSafe && !next.Safe() {
						errs[w] = fmt.Errorf("%w: firing %s from %s", ErrUnsafe,
							n.Transitions[t].Name, m.Format(n))
						stop.Store(true)
						return
					}
					id, added := visited.Add(next.Key())
					if id < 0 {
						limitHit.Store(true)
						stop.Store(true)
						return
					}
					if added {
						stateLogs[w] = append(stateLogs[w], stateRec{id: int32(id), m: next})
						inFlight.Add(1)
						my.push(&wsTask{m: next, id: int32(id)})
					}
					steps = append(steps, pstep{t: t, to: int32(id)})
				}
				edgeLogs[w] = append(edgeLogs[w], expansion{from: tk.id, steps: steps})
				if inFlight.Add(-1) == 0 {
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Contention counters: CAS retries and cooperative resizes from the
	// visited table, steals and expansions from the workers.
	var steals, expanded int64
	for w := 0; w < workers; w++ {
		steals += stealCounts[w]
		expanded += expandCounts[w]
	}
	st := visited.Stats()
	reg.Counter("reach.steals").Add(steals)
	reg.Counter("reach.expanded").Add(expanded)
	reg.Counter("reach.cas_retries").Add(st.CASRetries)
	reg.Counter("reach.resizes").Add(st.Resizes)
	if sp != nil {
		sp.Event("workers-joined",
			"expanded", strconv.FormatInt(expanded, 10),
			"steals", strconv.FormatInt(steals, 10),
			"cas_retries", strconv.FormatInt(st.CASRetries, 10))
	}

	var firstErr error
	for w := range errs {
		if errs[w] != nil {
			firstErr = errs[w]
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if limitHit.Load() {
		// The refused insertion proves the state count exceeds the cap.
		// Re-derive the canonical partial graph sequentially: the cap
		// bounds that pass, and the result — exactly maxStates states in
		// sequential-BFS order plus the same typed error — is
		// bit-identical to the sequential explorer's at any worker count.
		seq := opts
		seq.Workers = 0
		seq.Arena = nil
		g, err := Explore(n, seq)
		if err == nil {
			err = budget.LimitStates(maxStates, maxStates)
		}
		return g, err
	}

	// Merge the per-worker logs into the provisional graph, indexed by
	// visited-table id. The WaitGroup join orders every worker write
	// before these reads.
	total := visited.Len()
	markings := make([]petri.Marking, total)
	out := make([][]pstep, total)
	markings[0] = init
	for w := range stateLogs {
		for _, rec := range stateLogs[w] {
			markings[rec.id] = rec.m
		}
	}
	for w := range edgeLogs {
		for _, e := range edgeLogs[w] {
			out[e.from] = e.steps
		}
	}

	// Deterministic renumbering: a sequential BFS over the provisional
	// graph visits states in exactly the order the sequential explorer
	// numbers them, because each state's steps are already in ascending
	// transition order.
	g := &Graph{Net: n, Index: make(map[string]int, total)}
	g.Out = make([][]Step, total)
	renum := make([]int32, total)
	for i := range renum {
		renum[i] = -1
	}
	renum[0] = 0
	order := make([]int32, 1, total)
	for head := 0; head < len(order); head++ {
		steps := out[order[head]]
		if len(steps) == 0 {
			continue
		}
		newSteps := make([]Step, len(steps))
		for j, st := range steps {
			if renum[st.to] < 0 {
				renum[st.to] = int32(len(order))
				order = append(order, st.to)
			}
			newSteps[j] = Step{Transition: st.t, To: int(renum[st.to])}
		}
		g.Out[head] = newSteps
	}
	g.Markings = make([]petri.Marking, len(order))
	for newID, p := range order {
		g.Markings[newID] = markings[p]
		g.Index[markings[p].Key()] = newID
	}
	return g, nil
}
