package reach

import (
	"fmt"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/shardset"
)

// exploreParallel is the parallel sharded explicit engine: a worker-pool
// frontier expansion with a sharded visited table (one mutex per shard,
// shard chosen by an FNV hash of the marking key) and level-synchronized
// BFS. Within a level, every worker expands a disjoint slice of the
// frontier, so the set of states and edges discovered per level is
// schedule-independent; only the provisional state ids are not. A
// deterministic post-pass renumbers states in canonical sequential-BFS
// order, making the returned Graph bit-identical to the sequential
// explorer's for every worker count.
//
// MaxStates is enforced by the visited table itself: a refused insertion
// proves the full state count exceeds the cap, so the state-limit error is
// deterministic too. On a limit trip the canonical partial graph — exactly
// MaxStates states, bit-identical to the sequential explorer's partial
// result — is re-derived by a sequential pass, which the cap itself keeps
// cheap.
//
// Workers are panic-safe: a panic in any worker is recovered into a
// budget.ErrInternal carrying the stack, sibling workers stop at their next
// frontier item, and the one error is returned instead of crashing the
// process. Cancellation (opts.Budget) is polled at every level barrier and,
// amortized, inside worker expansion loops.
func exploreParallel(n *petri.Net, opts Options, workers int, sp *obs.Span) (*Graph, error) {
	init := n.InitialMarking()
	if opts.RequireSafe && !init.Safe() {
		return nil, fmt.Errorf("%w: initial marking %s", ErrUnsafe, init.Format(n))
	}
	maxStates := opts.maxStates()
	visited := shardset.NewLimited(4*workers, maxStates)
	visited.Add(init.Key()) // id 0; maxStates ≥ 1 always admits it

	type pstep struct {
		t  int
		to int32
	}
	// Provisional graph, indexed by visited-table id. markings and out only
	// grow at level barriers; within a level workers read markings and
	// write disjoint out[s] entries.
	markings := []petri.Marking{init}
	out := [][]pstep{nil}
	frontier := []int32{0}

	type workerResult struct {
		newIDs      []int32
		newMarkings []petri.Marking
		err         error
		limit       bool
	}

	// stop makes sibling workers bail out at their next frontier item after
	// a panic or cancellation; it carries no error itself.
	var stop atomic.Bool
	hooked := opts.Budget.Hooked()
	reg := sp.Registry()
	levels := reg.Counter("reach.levels")
	checks := reg.Counter("reach.budget_checks")
	frontierHist := reg.Histogram("reach.frontier")

	for len(frontier) > 0 {
		checks.Inc()
		if err := opts.Budget.Check("reach.parallel"); err != nil {
			return nil, err
		}
		levels.Inc()
		frontierHist.Observe(int64(len(frontier)))
		if sp != nil {
			sp.Event("level", "frontier", strconv.Itoa(len(frontier)))
		}
		results := make([]workerResult, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				res := &results[w]
				defer func() {
					if r := recover(); r != nil {
						res.err = budget.Internal(r, debug.Stack())
						stop.Store(true)
					}
				}()
				for i := w; i < len(frontier); i += workers {
					if stop.Load() {
						return
					}
					if hooked || i/workers%budget.CheckEvery == budget.CheckEvery-1 {
						checks.Inc()
						if err := opts.Budget.Check("reach.parallel.worker"); err != nil {
							res.err = err
							stop.Store(true)
							return
						}
					}
					s := frontier[i]
					m := markings[s]
					for t := 0; t < len(n.Transitions); t++ {
						if !n.Enabled(m, t) {
							continue
						}
						next := n.Fire(m, t)
						if opts.RequireSafe && !next.Safe() {
							res.err = fmt.Errorf("%w: firing %s from %s", ErrUnsafe,
								n.Transitions[t].Name, m.Format(n))
							stop.Store(true)
							return
						}
						id, added := visited.Add(next.Key())
						if id < 0 {
							res.limit = true
							return
						}
						if added {
							res.newIDs = append(res.newIDs, int32(id))
							res.newMarkings = append(res.newMarkings, next)
						}
						out[s] = append(out[s], pstep{t: t, to: int32(id)})
					}
				}
			}(w)
		}
		wg.Wait()

		limit := false
		var firstErr error
		for w := range results {
			if results[w].err != nil && firstErr == nil {
				firstErr = results[w].err
			}
			limit = limit || results[w].limit
		}
		if firstErr != nil {
			return nil, firstErr
		}
		if limit {
			// The refused insertion proves the state count exceeds the cap.
			// Re-derive the canonical partial graph sequentially: the cap
			// bounds that pass, and the result — exactly maxStates states in
			// sequential-BFS order plus the same typed error — is
			// bit-identical to the sequential explorer's at any worker count.
			seq := opts
			seq.Workers = 0
			seq.Arena = nil
			g, err := Explore(n, seq)
			if err == nil {
				err = budget.LimitStates(maxStates, maxStates)
			}
			return g, err
		}

		// Barrier merge: ids handed out this level form the contiguous
		// range [len(markings), visited.Len()).
		if total := visited.Len(); total > len(markings) {
			markings = append(markings, make([]petri.Marking, total-len(markings))...)
			out = append(out, make([][]pstep, total-len(out))...)
		}
		frontier = frontier[:0]
		for w := range results {
			for i, id := range results[w].newIDs {
				markings[id] = results[w].newMarkings[i]
			}
			frontier = append(frontier, results[w].newIDs...)
		}
	}

	// Deterministic renumbering: a sequential BFS over the provisional
	// graph visits states in exactly the order the sequential explorer
	// numbers them, because each state's steps are already in ascending
	// transition order.
	g := &Graph{Net: n, Index: make(map[string]int, len(markings))}
	g.Out = make([][]Step, len(markings))
	renum := make([]int32, len(markings))
	for i := range renum {
		renum[i] = -1
	}
	renum[0] = 0
	order := make([]int32, 1, len(markings))
	for head := 0; head < len(order); head++ {
		steps := out[order[head]]
		if len(steps) == 0 {
			continue
		}
		newSteps := make([]Step, len(steps))
		for j, st := range steps {
			if renum[st.to] < 0 {
				renum[st.to] = int32(len(order))
				order = append(order, st.to)
			}
			newSteps[j] = Step{Transition: st.t, To: int(renum[st.to])}
		}
		g.Out[head] = newSteps
	}
	g.Markings = make([]petri.Marking, len(order))
	for newID, p := range order {
		g.Markings[newID] = markings[p]
		g.Index[markings[p].Key()] = newID
	}
	return g, nil
}
