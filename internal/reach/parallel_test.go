package reach

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/budget"
	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/vme"
)

var workerCounts = []int{1, 2, 4, 8}

// TestParallelMatchesSequential is the determinism guarantee: the parallel
// explorer's Graph — state numbering, edges, and index — is bit-identical
// to the sequential explorer's at every worker count. Run under -race this
// also exercises the sharded visited table concurrently.
func TestParallelMatchesSequential(t *testing.T) {
	models := []struct {
		name string
		net  *petri.Net
	}{
		{"vme-read", vme.ReadSTG().Net},
		{"vme-read-write", vme.ReadWriteSTG().Net},
		{"toggles-8", gen.IndependentToggles(8)},
		{"ring-9-4", gen.MarkedGraphRing(9, 4)},
		{"muller-8", gen.MullerPipeline(8).Net},
		{"phil-5", gen.Philosophers(5)},
	}
	for _, mdl := range models {
		seq, err := Explore(mdl.net, Options{})
		if err != nil {
			t.Fatalf("%s: sequential: %v", mdl.name, err)
		}
		for _, w := range workerCounts {
			par, err := Explore(mdl.net, Options{Workers: w})
			if err != nil {
				t.Fatalf("%s w=%d: %v", mdl.name, w, err)
			}
			if !reflect.DeepEqual(seq.Markings, par.Markings) {
				t.Fatalf("%s w=%d: markings differ", mdl.name, w)
			}
			if !reflect.DeepEqual(seq.Out, par.Out) {
				t.Fatalf("%s w=%d: edges differ", mdl.name, w)
			}
			if !reflect.DeepEqual(seq.Index, par.Index) {
				t.Fatalf("%s w=%d: index differs", mdl.name, w)
			}
		}
	}
}

// TestParallelBuildSG checks the Workers plumbing through BuildSG: the SG
// of the VME READ+WRITE spec is identical however many workers explore it.
func TestParallelBuildSG(t *testing.T) {
	seq, err := BuildSG(vme.ReadWriteSTG(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		par, err := BuildSG(vme.ReadWriteSTG(), Options{Workers: w})
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if !reflect.DeepEqual(seq.States, par.States) || !reflect.DeepEqual(seq.Out, par.Out) {
			t.Fatalf("w=%d: SG differs from sequential", w)
		}
	}
}

// TestStateLimitExactAtInsertion pins the MaxStates cap regression: the
// sequential abort happens at insertion time, with exactly MaxStates states
// explored, and the parallel engine reports the same error.
func TestStateLimitExactAtInsertion(t *testing.T) {
	net := gen.IndependentToggles(6) // 64 states
	g, err := Explore(net, Options{MaxStates: 17})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("want ErrStateLimit, got %v", err)
	}
	if g == nil || len(g.Markings) != 17 {
		t.Fatalf("abort must leave exactly MaxStates explored states, got %v", g)
	}
	for _, w := range workerCounts {
		if _, err := Explore(net, Options{MaxStates: 17, Workers: w}); !errors.Is(err, ErrStateLimit) {
			t.Fatalf("w=%d: want ErrStateLimit, got %v", w, err)
		}
	}
	// A cap the space fits exactly is not an error, for either engine.
	for _, w := range []int{0, 2, 4} {
		g, err := Explore(net, Options{MaxStates: 64, Workers: w})
		if err != nil || g.NumStates() != 64 {
			t.Fatalf("w=%d: exact-fit cap must succeed: %v %v", w, g, err)
		}
	}
}

// TestCappedParallelMatchesSequentialPartial is the budget-trip determinism
// regression: a capped exploration at Workers=4 returns the same typed
// budget error — same limit, same used count via errors.As — and the same
// canonical partial graph, bit for bit, as Workers=1.
func TestCappedParallelMatchesSequentialPartial(t *testing.T) {
	nets := []struct {
		name string
		net  *petri.Net
		cap  int
	}{
		{"toggles-8", gen.IndependentToggles(8), 41},
		{"phil-5", gen.Philosophers(5), 30},
		{"vme-read-write", vme.ReadWriteSTG().Net, 23},
	}
	for _, mdl := range nets {
		seqG, seqErr := Explore(mdl.net, Options{MaxStates: mdl.cap, Workers: 1})
		if !errors.Is(seqErr, ErrStateLimit) {
			t.Fatalf("%s: sequential cap must trip, got %v", mdl.name, seqErr)
		}
		var seqLim budget.ErrLimit
		if !errors.As(seqErr, &seqLim) {
			t.Fatalf("%s: sequential error not an ErrLimit: %v", mdl.name, seqErr)
		}
		parG, parErr := Explore(mdl.net, Options{MaxStates: mdl.cap, Workers: 4})
		var parLim budget.ErrLimit
		if !errors.As(parErr, &parLim) {
			t.Fatalf("%s w=4: error not an ErrLimit: %v", mdl.name, parErr)
		}
		if parLim != seqLim {
			t.Fatalf("%s: typed errors differ: seq %+v, par %+v", mdl.name, seqLim, parLim)
		}
		if parG == nil || parG.NumStates() != seqG.NumStates() {
			t.Fatalf("%s: partial state counts differ: seq %d, par %v",
				mdl.name, seqG.NumStates(), parG)
		}
		if !reflect.DeepEqual(seqG.Markings, parG.Markings) ||
			!reflect.DeepEqual(seqG.Out, parG.Out) {
			t.Fatalf("%s: partial graphs differ between worker counts", mdl.name)
		}
	}
}

// TestBuildSGToggleStateLimit pins the same insertion-time semantics on the
// (marking, code) toggle exploration.
func TestBuildSGToggleStateLimit(t *testing.T) {
	g := toggleRingSpec(8)
	if _, err := BuildSG(g, Options{MaxStates: 3}); !errors.Is(err, ErrStateLimit) {
		t.Fatalf("want ErrStateLimit, got %v", err)
	}
	if _, err := BuildSG(g, Options{}); err != nil {
		t.Fatalf("unbounded toggle SG: %v", err)
	}
}

func TestParallelDetectsUnsafe(t *testing.T) {
	n := petri.New("unsafe")
	a := n.AddTransition("a")
	b := n.AddTransition("b")
	pa := n.AddPlace("pa", 1)
	pb := n.AddPlace("pb", 1)
	sink := n.AddPlace("sink", 0)
	n.ArcPT(pa, a)
	n.ArcPT(pb, b)
	n.ArcTP(a, sink)
	n.ArcTP(b, sink)
	for _, w := range workerCounts {
		if _, err := Explore(n, Options{RequireSafe: true, Workers: w}); !errors.Is(err, ErrUnsafe) {
			t.Fatalf("w=%d: want ErrUnsafe, got %v", w, err)
		}
	}
}
