package reach

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/vme"
)

// TestArenaMatchesSequential reuses ONE arena across every model, in both
// safe and unsafe modes, and demands the exact Graph the fresh-allocation
// explorer builds — state numbering, edges (including nil adjacency on
// deadlock states), and index. Cross-model reuse is the point: stale scratch
// from a big net must never leak into a small one.
func TestArenaMatchesSequential(t *testing.T) {
	models := []struct {
		name string
		net  *petri.Net
		safe bool // net is 1-safe, so exercise RequireSafe too
	}{
		{"vme-read", vme.ReadSTG().Net, true},
		{"vme-read-write", vme.ReadWriteSTG().Net, true},
		{"toggles-8", gen.IndependentToggles(8), true},
		{"ring-9-4", gen.MarkedGraphRing(9, 4), false}, // adjacent tokens merge
		{"muller-8", gen.MullerPipeline(8).Net, true},
		{"phil-5", gen.Philosophers(5), true}, // has deadlock states (nil Out rows)
		{"cscring-3", gen.CSCRing(3).Net, true},
	}
	a := NewArena()
	for round := 0; round < 2; round++ {
		for _, mdl := range models {
			for _, safe := range []bool{false, mdl.safe} {
				seq, err := Explore(mdl.net, Options{RequireSafe: safe})
				if err != nil {
					t.Fatalf("%s: sequential: %v", mdl.name, err)
				}
				got, err := Explore(mdl.net, Options{RequireSafe: safe, Arena: a})
				if err != nil {
					t.Fatalf("%s: arena: %v", mdl.name, err)
				}
				if !reflect.DeepEqual(seq.Markings, got.Markings) {
					t.Fatalf("%s safe=%v: markings differ", mdl.name, safe)
				}
				if !reflect.DeepEqual(seq.Out, got.Out) {
					t.Fatalf("%s safe=%v: edges differ", mdl.name, safe)
				}
				if !reflect.DeepEqual(seq.Index, got.Index) {
					t.Fatalf("%s safe=%v: index differs", mdl.name, safe)
				}
			}
		}
	}
}

// TestArenaBuildSG checks the scratch plumbing through BuildSG: repeated
// arena-backed builds return SGs identical to the fresh-allocation path,
// and the SG owns its storage — it must survive the arena moving on to a
// different spec.
func TestArenaBuildSG(t *testing.T) {
	a := NewArena()
	ref, err := BuildSG(vme.ReadWriteSTG(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildSG(vme.ReadWriteSTG(), Options{Arena: a})
	if err != nil {
		t.Fatal(err)
	}
	// Clobber the arena with unrelated builds before comparing.
	if _, err := BuildSG(gen.CSCRing(2), Options{Arena: a}); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSG(gen.MullerPipeline(6), Options{Arena: a}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.States, got.States) || !reflect.DeepEqual(ref.Out, got.Out) {
		t.Fatal("arena-backed SG differs from fresh-allocation SG")
	}
}

// TestArenaStateLimit pins the partial-graph contract on the arena path:
// exactly MaxStates states, nil adjacency for unexpanded states, and no
// stale rows from a previous full exploration of the same net.
func TestArenaStateLimit(t *testing.T) {
	net := gen.IndependentToggles(6) // 64 states
	a := NewArena()
	if _, err := Explore(net, Options{Arena: a}); err != nil {
		t.Fatal(err)
	}
	ref, err := Explore(net, Options{MaxStates: 17})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("want ErrStateLimit, got %v", err)
	}
	got, err := Explore(net, Options{MaxStates: 17, Arena: a})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("arena: want ErrStateLimit, got %v", err)
	}
	if len(got.Markings) != 17 {
		t.Fatalf("abort must leave exactly MaxStates states, got %d", len(got.Markings))
	}
	if !reflect.DeepEqual(ref.Markings, got.Markings) || !reflect.DeepEqual(ref.Out, got.Out) {
		t.Fatal("partial graphs differ")
	}
}

// TestArenaBuildSGAllocs pins the win the arena exists for: after a warm-up
// build, rebuilding the same spec's reachability graph allocates only the
// per-state key strings and the SG's own storage — the visited table,
// marking storage and adjacency rows are all reused. The fresh-allocation
// path pays more than twice that.
func TestArenaBuildSGAllocs(t *testing.T) {
	g := vme.ReadSTG()
	a := NewArena()
	if _, err := Explore(g.Net, Options{RequireSafe: true, Arena: a}); err != nil {
		t.Fatal(err)
	}
	arena := testing.AllocsPerRun(20, func() {
		if _, err := Explore(g.Net, Options{RequireSafe: true, Arena: a}); err != nil {
			t.Fatal(err)
		}
	})
	fresh := testing.AllocsPerRun(20, func() {
		if _, err := Explore(g.Net, Options{RequireSafe: true}); err != nil {
			t.Fatal(err)
		}
	})
	if arena*2 > fresh {
		t.Fatalf("arena exploration allocates %.0f/run, fresh %.0f/run — want < half", arena, fresh)
	}
}

func BenchmarkArenaExplore(b *testing.B) {
	net := vme.ReadWriteSTG().Net
	run := func(b *testing.B, opts Options) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Explore(net, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("fresh", func(b *testing.B) { run(b, Options{RequireSafe: true}) })
	b.Run("arena", func(b *testing.B) {
		run(b, Options{RequireSafe: true, Arena: NewArena()})
	})
}
