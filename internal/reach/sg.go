package reach

import (
	"encoding/binary"
	"fmt"

	"repro/internal/budget"
	"repro/internal/petri"
	"repro/internal/stg"
	"repro/internal/ts"
)

// BuildSG generates the state graph of an STG: the reachability graph with
// every state labeled by a binary code of signal values (Figure 4). It
// establishes the consistency property of Section 2.1 — rising and falling
// transitions of each signal alternate on every path — and infers the
// initial code, failing with a descriptive error when the STG is
// inconsistent.
//
// Dummy transitions are allowed: they change the marking but not the code.
// Toggle transitions are rejected (normalize the spec first).
//
// Options.Workers plumbs through to the underlying marking exploration, so
// the SG of a large STG is built with the parallel engine; the code
// labeling passes stay sequential. Options.Arena additionally runs the
// exploration and the labeling scratch on reusable memory — the returned SG
// owns its own storage either way. The toggle path is always sequential and
// ignores both.
func BuildSG(g *stg.STG, opts Options) (*ts.SG, error) {
	if len(g.Signals) > 64 {
		return nil, fmt.Errorf("reach: %d signals exceed the 64-signal code limit", len(g.Signals))
	}
	for _, l := range g.Labels {
		if l.Sig >= 0 && l.Dir == stg.Toggle {
			// Toggle transitions make the code path-dependent: states are
			// (marking, code) pairs and every toggle arc is normalized to a
			// concrete rising or falling edge per state.
			return buildSGToggle(g, opts)
		}
	}
	rg, err := Explore(g.Net, firstSafe(opts))
	if err != nil {
		return nil, err
	}

	// Phase 1: relative codes. delta[s] is the XOR distance of state s's
	// code from the (unknown) initial code; fixed/value constrain initial
	// bits: firing a+ from s requires code(s).a == 0, i.e.
	// initial.a == delta[s].a; firing a- requires initial.a != delta[s].a.
	var (
		delta []ts.Code
		seen  []bool
		queue []int
	)
	if a := opts.Arena; a != nil {
		delta, seen, queue = a.sgScratch(rg.NumStates())
	} else {
		delta = make([]ts.Code, rg.NumStates())
		seen = make([]bool, rg.NumStates())
	}
	seen[0] = true
	var initKnown, initVal ts.Code
	queue = append(queue, 0)
	hooked := opts.Budget.Hooked()
	for head := 0; head < len(queue); head++ {
		if hooked || head%budget.CheckEvery == 0 {
			if err := opts.Budget.Check("reach.label"); err != nil {
				return nil, err
			}
		}
		s := queue[head]
		for _, step := range rg.Out[s] {
			l := g.Labels[step.Transition]
			next := delta[s]
			if l.Sig >= 0 {
				next = next.Flip(l.Sig)
				// Polarity constraint on the initial code.
				want := delta[s].Bit(l.Sig) // initial bit for a Rise
				if l.Dir == stg.Fall {
					want = !want
				}
				bit := uint(l.Sig)
				if initKnown&(1<<bit) != 0 {
					if initVal.Bit(l.Sig) != want {
						return nil, fmt.Errorf(
							"reach: STG %s is not consistent: signal %s needs contradictory initial values (witness transition %s at %s)",
							g.Name(), g.Signals[l.Sig].Name,
							g.Net.Transitions[step.Transition].Name,
							rg.Markings[s].Format(g.Net))
					}
				} else {
					initKnown |= 1 << bit
					initVal = initVal.Set(l.Sig, want)
				}
			}
			if seen[step.To] {
				if delta[step.To] != next {
					return nil, fmt.Errorf(
						"reach: STG %s is not consistent: marking %s reachable with different signal codes",
						g.Name(), rg.Markings[step.To].Format(g.Net))
				}
				continue
			}
			seen[step.To] = true
			delta[step.To] = next
			queue = append(queue, step.To)
		}
	}
	if a := opts.Arena; a != nil {
		a.putQueue(queue)
	}

	// Phase 2: assemble the SG. Signals that never switch keep initial 0.
	sg := &ts.SG{
		Name:    g.Name(),
		Signals: append([]stg.Signal(nil), g.Signals...),
		Initial: 0,
	}
	sg.States = make([]ts.State, rg.NumStates())
	sg.Out = make([][]ts.Arc, rg.NumStates())
	for s := range rg.Markings {
		sg.States[s] = ts.State{
			Code:  initVal ^ delta[s],
			Key:   rg.Markings[s].Key(),
			Label: rg.Markings[s].Format(g.Net),
		}
		for _, step := range rg.Out[s] {
			l := g.Labels[step.Transition]
			ev := ts.Event{Sig: l.Sig, Dir: l.Dir, Name: g.Net.Transitions[step.Transition].Name}
			sg.Out[s] = append(sg.Out[s], ts.Arc{Event: ev, To: step.To})
		}
	}
	return sg, nil
}

func firstSafe(o Options) Options {
	o.RequireSafe = true
	return o
}

// buildSGToggle explores (marking, code) pairs directly: toggle transitions
// flip their signal's bit, rising/falling transitions additionally assert
// the expected previous value (consistency). All signals start at 0; arcs
// are labeled with the concrete edge taken.
func buildSGToggle(g *stg.STG, opts Options) (*ts.SG, error) {
	type node struct {
		m    petri.Marking
		code ts.Code
	}

	sg := &ts.SG{
		Name:    g.Name(),
		Signals: append([]stg.Signal(nil), g.Signals...),
	}
	index := map[string]int{}
	var nodes []node
	maxStates := opts.maxStates()
	// add returns (index, false) when inserting would exceed MaxStates, so
	// the abort is exact: the limit fires with exactly maxStates states
	// explored.
	add := func(n node) (int, bool) {
		k := toggleKey(n.m, n.code)
		if i, ok := index[k]; ok {
			return i, true
		}
		if len(nodes) >= maxStates {
			return 0, false
		}
		i := len(nodes)
		index[k] = i
		nodes = append(nodes, n)
		sg.States = append(sg.States, ts.State{
			Code:  n.code,
			Key:   k,
			Label: n.m.Format(g.Net),
		})
		sg.Out = append(sg.Out, nil)
		return i, true
	}
	init := node{m: g.Net.InitialMarking(), code: 0}
	if !init.m.Safe() {
		return nil, fmt.Errorf("%w: initial marking", ErrUnsafe)
	}
	if _, ok := add(init); !ok {
		return nil, budget.LimitStates(maxStates, len(nodes))
	}
	hooked := opts.Budget.Hooked()
	for head := 0; head < len(nodes); head++ {
		if hooked || head%budget.CheckEvery == 0 {
			if err := opts.Budget.Check("reach.toggle"); err != nil {
				return nil, err
			}
		}
		cur := nodes[head]
		for t := range g.Net.Transitions {
			if !g.Net.Enabled(cur.m, t) {
				continue
			}
			l := g.Labels[t]
			nextCode := cur.code
			ev := ts.Event{Sig: l.Sig, Dir: l.Dir, Name: g.Net.Transitions[t].Name}
			if l.Sig >= 0 {
				bit := cur.code.Bit(l.Sig)
				switch l.Dir {
				case stg.Rise:
					if bit {
						return nil, fmt.Errorf("reach: STG %s inconsistent: %s fires at value 1",
							g.Name(), g.Net.Transitions[t].Name)
					}
				case stg.Fall:
					if !bit {
						return nil, fmt.Errorf("reach: STG %s inconsistent: %s fires at value 0",
							g.Name(), g.Net.Transitions[t].Name)
					}
				case stg.Toggle:
					// Normalize the arc label to the edge actually taken.
					ev.Dir = stg.Rise
					if bit {
						ev.Dir = stg.Fall
					}
					ev.Name = g.Signals[l.Sig].Name + ev.Dir.String()
				}
				nextCode = cur.code.Flip(l.Sig)
			}
			nm := g.Net.Fire(cur.m, t)
			if !nm.Safe() {
				return nil, fmt.Errorf("%w: firing %s", ErrUnsafe, g.Net.Transitions[t].Name)
			}
			to, ok := add(node{m: nm, code: nextCode})
			if !ok {
				return nil, budget.LimitStates(maxStates, len(nodes))
			}
			sg.Out[head] = append(sg.Out[head], ts.Arc{Event: ev, To: to})
		}
	}
	return sg, nil
}

// toggleKey composes the visited key of a (marking, code) node in a single
// buffer — one short-lived buffer plus the string, instead of the
// string-concatenation + fmt.Sprint chain it replaces on this hot path.
func toggleKey(m petri.Marking, code ts.Code) string {
	b := make([]byte, len(m)+8)
	copy(b, m)
	binary.BigEndian.PutUint64(b[len(m):], uint64(code))
	return string(b)
}
