// Package reach implements explicit reachability analysis of Petri nets (the
// "token game" of Section 1.2) and the construction of state graphs from
// STGs, including the consistency check of Section 2.1 (rising and falling
// transitions of each signal must alternate on every path).
package reach

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/petri"
)

// Options bound an exploration.
type Options struct {
	// MaxStates aborts the exploration when it would exceed this many
	// states (0 = 1<<22 default). The cap is enforced at insertion time:
	// exactly MaxStates states are explored before ErrStateLimit fires.
	MaxStates int
	// Budget, when non-nil, adds cancellation and resource ceilings: the
	// context is polled (amortized, every budget.CheckEvery expansions) and
	// Budget.MaxStates tightens MaxStates. Aborts surface as the typed
	// budget errors (ErrStateLimit remains errors.Is-compatible).
	Budget *budget.Budget
	// RequireSafe makes the exploration fail on the first marking with more
	// than one token in a place. When false, markings up to 255 tokens per
	// place are explored (boundedness violations beyond that still fail).
	RequireSafe bool
	// Workers selects the parallel sharded explorer when > 1: a
	// level-synchronized BFS over a sharded visited table, followed by a
	// deterministic renumbering pass, so the resulting Graph is
	// bit-identical to the sequential explorer's regardless of worker
	// count. 0 or 1 runs the sequential explorer.
	Workers int
	// Arena, when non-nil, runs the sequential explorer on reusable scratch
	// memory: the returned Graph is bit-identical but aliases the arena and
	// stays valid only until the arena's next use. Ignored when Workers > 1
	// (the sharded explorer has its own per-worker storage).
	Arena *Arena
	// Obs is the parent observability span (usually a phase of the synthesis
	// flow): the explorer records an "engine:explicit" child span and the
	// reach.* counters into its registry. nil — the default — disables
	// observability at zero cost on the hot paths.
	Obs *obs.Span
}

func (o Options) maxStates() int {
	cap := o.MaxStates
	if cap <= 0 {
		cap = 1 << 22
	}
	return o.Budget.StateLimit(cap)
}

func (o Options) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// ErrUnsafe is returned when RequireSafe is set and a 2-token place is found.
var ErrUnsafe = fmt.Errorf("reach: net is not safe (1-bounded)")

// ErrStateLimit is the errors.Is anchor for state-limit aborts. It is an
// alias of budget.Sentinel(budget.States): the concrete errors returned are
// budget.ErrLimit values carrying the ceiling and usage, and they match this
// sentinel (and stubborn.ErrStateLimit) under errors.Is.
var ErrStateLimit = budget.Sentinel(budget.States)

// Graph is the reachability graph of a net: states are markings.
type Graph struct {
	Net      *petri.Net
	Markings []petri.Marking
	// Out[i] lists (transition, successor-state) pairs.
	Out [][]Step
	// Index maps marking keys to state indexes.
	Index map[string]int
}

// Step is one firing in the reachability graph.
type Step struct {
	Transition int
	To         int
}

// Explore computes the reachability graph of the net under the options.
// With Options.Workers > 1 the parallel sharded explorer is used; it
// produces a bit-identical Graph (same state numbering, edges and index).
//
// On a state-limit trip (errors.Is(err, ErrStateLimit)) the partial graph
// explored so far — exactly MaxStates states, in canonical sequential-BFS
// order — is returned alongside the typed budget.ErrLimit error at every
// worker count. On cancellation the sequential explorer returns whatever
// partial graph exists; the parallel explorer returns nil.
func Explore(n *petri.Net, opts Options) (*Graph, error) {
	if w := opts.workers(); w > 1 {
		sp, start := openEngineSpan(opts.Obs, "engine:explicit-parallel")
		if sp != nil {
			sp.Attr("workers", strconv.Itoa(w))
			sp.Registry().Gauge("reach.workers").Max(int64(w))
		}
		g, err := exploreParallel(n, opts, w, sp)
		closeEngineSpan(sp, start, g, err)
		return g, err
	}
	sp, start := openEngineSpan(opts.Obs, "engine:explicit")
	var g *Graph
	var err error
	if opts.Arena != nil {
		g, err = exploreArena(n, opts, opts.Arena)
	} else {
		g, err = exploreSeq(n, opts)
	}
	closeEngineSpan(sp, start, g, err)
	return g, err
}

// openEngineSpan opens the explorer's engine span under the parent phase
// span. The wall-clock start is sampled only when observability is on, so
// the disabled path stays a nil check.
func openEngineSpan(parent *obs.Span, name string) (*obs.Span, time.Time) {
	sp := parent.Child(name)
	if sp == nil {
		return nil, time.Time{}
	}
	return sp, time.Now()
}

// closeEngineSpan records the exploration totals (reach.states, reach.arcs,
// reach.states_per_sec) into the span's registry and ends the span. Partial
// graphs from budget trips still report their explored totals.
func closeEngineSpan(sp *obs.Span, start time.Time, g *Graph, err error) {
	if sp == nil {
		return
	}
	states, arcs := 0, 0
	if g != nil {
		states, arcs = g.NumStates(), g.NumArcs()
	}
	reg := sp.Registry()
	reg.Counter("reach.states").Add(int64(states))
	reg.Counter("reach.arcs").Add(int64(arcs))
	sp.Attr("states", strconv.Itoa(states))
	sp.Attr("arcs", strconv.Itoa(arcs))
	if err != nil {
		sp.Attr("error", err.Error())
	}
	if sec := time.Since(start).Seconds(); sec > 0 && states > 0 {
		reg.Gauge("reach.states_per_sec").Set(int64(float64(states) / sec))
	}
	sp.End()
}

// exploreSeq is the plain sequential explorer (no arena, no workers).
func exploreSeq(n *petri.Net, opts Options) (*Graph, error) {
	g := &Graph{Net: n, Index: make(map[string]int)}
	init := n.InitialMarking()
	if opts.RequireSafe && !init.Safe() {
		return nil, fmt.Errorf("%w: initial marking %s", ErrUnsafe, init.Format(n))
	}
	g.add(init)
	maxStates := opts.maxStates()
	hooked := opts.Budget.Hooked()
	checks := opts.Obs.Registry().Counter("reach.budget_checks")
	for head := 0; head < len(g.Markings); head++ {
		if hooked || head%budget.CheckEvery == 0 {
			checks.Inc()
			if err := opts.Budget.Check("reach.explore"); err != nil {
				return g, err
			}
		}
		m := g.Markings[head]
		for t := range n.Transitions {
			if !n.Enabled(m, t) {
				continue
			}
			next := n.Fire(m, t)
			if opts.RequireSafe && !next.Safe() {
				return nil, fmt.Errorf("%w: firing %s from %s", ErrUnsafe,
					n.Transitions[t].Name, m.Format(n))
			}
			idx, ok := g.Index[next.Key()]
			if !ok {
				if len(g.Markings) >= maxStates {
					return g, budget.LimitStates(maxStates, len(g.Markings))
				}
				idx = g.add(next)
			}
			g.Out[head] = append(g.Out[head], Step{Transition: t, To: idx})
		}
	}
	return g, nil
}

func (g *Graph) add(m petri.Marking) int {
	idx := len(g.Markings)
	g.Markings = append(g.Markings, m)
	g.Out = append(g.Out, nil)
	g.Index[m.Key()] = idx
	return idx
}

// NumStates returns the number of reachable markings.
func (g *Graph) NumStates() int { return len(g.Markings) }

// NumArcs returns the number of firings (arcs).
func (g *Graph) NumArcs() int {
	n := 0
	for _, s := range g.Out {
		n += len(s)
	}
	return n
}

// Deadlocks returns the states with no enabled transitions.
func (g *Graph) Deadlocks() []int {
	var out []int
	for i, s := range g.Out {
		if len(s) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// IsSafe reports whether every reachable marking is 1-bounded. (Only
// meaningful when Explore ran without RequireSafe.)
func (g *Graph) IsSafe() bool {
	for _, m := range g.Markings {
		if !m.Safe() {
			return false
		}
	}
	return true
}

// LiveTransitions returns, for each transition, whether it fires on some arc
// of the reachability graph (L1-liveness from the initial marking).
func (g *Graph) LiveTransitions() []bool {
	live := make([]bool, len(g.Net.Transitions))
	for _, steps := range g.Out {
		for _, s := range steps {
			live[s.Transition] = true
		}
	}
	return live
}
