package reach

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/petri"
	"repro/internal/ts"
)

// Arena is a reusable scratch workspace for repeated explorations of nets of
// similar size — the state-encoding candidate search rebuilds thousands of
// state graphs, and without reuse every rebuild pays for a fresh visited
// table, marking storage and adjacency slices. An Arena amortizes all of
// that: marking bytes are bump-allocated from recycled blocks, the visited
// index map and the per-state slices are cleared and reused in place.
//
// A Graph produced by an arena-backed exploration aliases the arena's
// memory: it is valid only until the next Explore/BuildSG call using the
// same Arena. Callers that keep the Graph must not reuse the Arena; callers
// that only distill the Graph (as BuildSG does) reuse it freely. An Arena is
// not safe for concurrent use — give each worker its own.
type Arena struct {
	index    map[string]int
	markings []petri.Marking
	out      [][]Step
	fire     petri.Marking

	blocks [][]byte
	cur    int // block being filled

	// BuildSG scratch (code labeling passes).
	delta []ts.Code
	seen  []bool
	queue []int
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{index: make(map[string]int)}
}

const arenaBlockSize = 1 << 16

// reset rewinds the arena for a fresh exploration of a net with np places.
func (a *Arena) reset(np int) {
	clear(a.index)
	a.markings = a.markings[:0]
	a.cur = 0
	for i := range a.blocks {
		a.blocks[i] = a.blocks[i][:0]
	}
	if cap(a.fire) < np {
		a.fire = make(petri.Marking, np)
	}
	a.fire = a.fire[:np]
}

// alloc copies m into arena-owned storage and returns the stable copy.
func (a *Arena) alloc(m petri.Marking) petri.Marking {
	for {
		if a.cur == len(a.blocks) {
			size := arenaBlockSize
			if len(m) > size {
				size = len(m)
			}
			a.blocks = append(a.blocks, make([]byte, 0, size))
		}
		b := a.blocks[a.cur]
		if len(b)+len(m) <= cap(b) {
			off := len(b)
			a.blocks[a.cur] = b[: off+len(m) : cap(b)]
			v := b[off : off+len(m) : off+len(m)]
			copy(v, m)
			return petri.Marking(v)
		}
		a.cur++
	}
}

// outSlot returns a cleared reusable Step slice for state idx.
func (a *Arena) outSlot(idx int) []Step {
	if idx < len(a.out) {
		return a.out[idx][:0]
	}
	a.out = append(a.out, nil)
	return nil
}

// exploreArena is the sequential explorer running entirely on arena scratch.
// It produces a Graph bit-identical to Explore's (same state numbering,
// edges, index, nil-vs-empty adjacency and error behavior), but with
// near-zero allocation churn: markings are bump-allocated, the visited map
// is reused, and enabledness candidates are fired into a single scratch
// buffer.
func exploreArena(n *petri.Net, opts Options, a *Arena) (*Graph, error) {
	a.reset(len(n.Places))
	g := &Graph{Net: n, Index: a.index}
	init := n.InitialMarking()
	if opts.RequireSafe && !init.Safe() {
		return nil, fmt.Errorf("%w: initial marking %s", ErrUnsafe, init.Format(n))
	}
	a.markings = append(a.markings, a.alloc(init))
	a.index[init.Key()] = 0
	maxStates := opts.maxStates()
	hooked := opts.Budget.Hooked()
	checks := opts.Obs.Registry().Counter("reach.budget_checks")
	for head := 0; head < len(a.markings); head++ {
		if hooked || head%budget.CheckEvery == 0 {
			checks.Inc()
			if err := opts.Budget.Check("reach.explore"); err != nil {
				return a.finish(g, head-1), err
			}
		}
		m := a.markings[head]
		steps := a.outSlot(head)
		for t := range n.Transitions {
			if !n.Enabled(m, t) {
				continue
			}
			next := a.fire
			copy(next, m)
			n.FireInPlace(next, t)
			if opts.RequireSafe && !next.Safe() {
				return nil, fmt.Errorf("%w: firing %s from %s", ErrUnsafe,
					n.Transitions[t].Name, m.Format(n))
			}
			idx, ok := a.index[string(next)]
			if !ok {
				if len(a.markings) >= maxStates {
					a.out[head] = steps
					return a.finish(g, head), budget.LimitStates(maxStates, len(a.markings))
				}
				idx = len(a.markings)
				stable := a.alloc(next)
				a.markings = append(a.markings, stable)
				a.index[stable.Key()] = idx
			}
			steps = append(steps, Step{Transition: t, To: idx})
		}
		if len(steps) == 0 {
			steps = nil // match the non-arena explorer for deadlock states
		}
		a.out[head] = steps
	}
	return a.finish(g, len(a.markings)-1), nil
}

// finish attaches the arena's state to g. States past lastExpanded (present
// only on the ErrStateLimit partial graph) get the nil adjacency the
// non-arena explorer leaves for them.
func (a *Arena) finish(g *Graph, lastExpanded int) *Graph {
	n := len(a.markings)
	for len(a.out) < n {
		a.out = append(a.out, nil)
	}
	for i := lastExpanded + 1; i < n; i++ {
		a.out[i] = nil
	}
	g.Markings = a.markings
	g.Out = a.out[:n]
	return g
}

// sgScratch returns reusable delta/seen buffers for n states plus an empty
// BFS queue. The caller hands the queue back via putQueue so a grown backing
// array survives to the next build.
func (a *Arena) sgScratch(n int) (delta []ts.Code, seen []bool, queue []int) {
	if cap(a.delta) < n {
		a.delta = make([]ts.Code, n)
		a.seen = make([]bool, n)
	}
	delta = a.delta[:n]
	seen = a.seen[:n]
	for i := range delta {
		delta[i] = 0
		seen[i] = false
	}
	return delta, seen, a.queue[:0]
}

func (a *Arena) putQueue(q []int) { a.queue = q[:0] }
