package reach

import (
	"testing"

	"repro/internal/stg"
	"repro/internal/ts"
)

// toggleRingSpec builds a single-signal STG whose n toggle transitions form
// a ring: the (marking, code) exploration walks a cycle of n or 2n states.
func toggleRingSpec(n int) *stg.STG {
	g := stg.New("togring")
	g.AddSignal("x", stg.Output)
	tr := make([]int, n)
	for i := range tr {
		tr[i] = g.AddTransition(0, stg.Toggle)
	}
	for i := 0; i < n-1; i++ {
		g.Net.Implicit(tr[i], tr[i+1], 0)
	}
	g.Net.Implicit(tr[n-1], tr[0], 1)
	return g
}

// TestToggleKeyAllocs pins the hot-path fix: composing a (marking, code)
// visited key takes at most two allocations (the scratch buffer and the
// string), not the concatenation + fmt.Sprint chain it replaced.
func TestToggleKeyAllocs(t *testing.T) {
	m := toggleRingSpec(6).Net.InitialMarking()
	code := ts.Code(0x0123456789abcdef)
	allocs := testing.AllocsPerRun(100, func() {
		_ = toggleKey(m, code)
	})
	if allocs > 2 {
		t.Fatalf("toggleKey allocates %.0f times per key, want ≤ 2", allocs)
	}
}

func BenchmarkToggleKey(b *testing.B) {
	m := toggleRingSpec(16).Net.InitialMarking()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = toggleKey(m, ts.Code(uint64(i)))
	}
}

func BenchmarkBuildSGToggle(b *testing.B) {
	g := toggleRingSpec(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSG(g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
