package reach

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/petri"
	"repro/internal/stg"
	"repro/internal/vme"
)

func TestExploreRing(t *testing.T) {
	n := petri.New("ring3")
	ts := make([]int, 3)
	for i := range ts {
		ts[i] = n.AddTransition(string(rune('a' + i)))
	}
	for i := 0; i < 3; i++ {
		init := 0
		if i == 2 {
			init = 1
		}
		p := n.AddPlace("p"+string(rune('0'+i)), init)
		n.ArcTP(ts[i], p)
		n.ArcPT(p, ts[(i+1)%3])
	}
	g, err := Explore(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 3 || g.NumArcs() != 3 {
		t.Fatalf("ring3: %d states, %d arcs", g.NumStates(), g.NumArcs())
	}
	if len(g.Deadlocks()) != 0 {
		t.Fatal("ring must be deadlock-free")
	}
	for i, live := range g.LiveTransitions() {
		if !live {
			t.Fatalf("transition %d should be live", i)
		}
	}
	if !g.IsSafe() {
		t.Fatal("ring is safe")
	}
}

func TestExploreDetectsUnsafe(t *testing.T) {
	// t produces into p twice via two parallel upstream firings.
	n := petri.New("unsafe")
	a := n.AddTransition("a")
	b := n.AddTransition("b")
	pa := n.AddPlace("pa", 1)
	pb := n.AddPlace("pb", 1)
	sink := n.AddPlace("sink", 0)
	n.ArcPT(pa, a)
	n.ArcPT(pb, b)
	n.ArcTP(a, sink)
	n.ArcTP(b, sink)
	if _, err := Explore(n, Options{RequireSafe: true}); !errors.Is(err, ErrUnsafe) {
		t.Fatalf("want ErrUnsafe, got %v", err)
	}
	g, err := Explore(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.IsSafe() {
		t.Fatal("graph should contain a 2-token marking")
	}
}

func TestExploreStateLimit(t *testing.T) {
	// 10 independent toggles: 2^10 markings.
	n := petri.New("big")
	for i := 0; i < 10; i++ {
		s := string(rune('a' + i))
		t0 := n.AddTransition(s + "0")
		t1 := n.AddTransition(s + "1")
		p0 := n.AddPlace(s+"p0", 1)
		p1 := n.AddPlace(s+"p1", 0)
		n.ArcPT(p0, t0)
		n.ArcTP(t0, p1)
		n.ArcPT(p1, t1)
		n.ArcTP(t1, p0)
	}
	if _, err := Explore(n, Options{MaxStates: 100}); !errors.Is(err, ErrStateLimit) {
		t.Fatalf("want ErrStateLimit, got %v", err)
	}
	g, err := Explore(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 1024 {
		t.Fatalf("independent toggles: %d states, want 1024", g.NumStates())
	}
}

func TestBuildSGToy(t *testing.T) {
	g := stg.New("toy")
	g.AddSignal("a", stg.Input)
	g.AddSignal("b", stg.Output)
	ap := g.Rise("a")
	bp := g.Rise("b")
	am := g.Fall("a")
	bm := g.Fall("b")
	g.Net.Chain(ap, bp, am, bm)
	g.Net.Implicit(bm, ap, 1)
	sg, err := BuildSG(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumStates() != 4 {
		t.Fatalf("toy handshake: %d states, want 4", sg.NumStates())
	}
	if sg.States[sg.Initial].Code != 0 {
		t.Fatalf("initial code = %s, want 00", sg.States[sg.Initial].Code.String(2))
	}
	// Walk the unique cycle and check codes: 00 -> 10 -> 11 -> 01 -> 00.
	want := []string{"00", "10", "11", "01"}
	s := sg.Initial
	for i := 0; i < 4; i++ {
		if got := sg.States[s].Code.String(2); got != want[i] {
			t.Fatalf("step %d: code %s, want %s", i, got, want[i])
		}
		if len(sg.Out[s]) != 1 {
			t.Fatalf("step %d: %d arcs", i, len(sg.Out[s]))
		}
		s = sg.Out[s][0].To
	}
	if s != sg.Initial {
		t.Fatal("cycle must close")
	}
}

func TestBuildSGInfersInitialOne(t *testing.T) {
	// Signal starts high: first transition is a fall.
	g := stg.New("high")
	g.AddSignal("x", stg.Output)
	xm := g.Fall("x")
	xp := g.Rise("x")
	g.Net.Chain(xm, xp)
	g.Net.Implicit(xp, xm, 1)
	sg, err := BuildSG(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sg.States[sg.Initial].Code.Bit(0) {
		t.Fatal("x must be inferred initially 1")
	}
}

func TestBuildSGDetectsInconsistency(t *testing.T) {
	// x+ followed by x+ again: no alternation.
	g := stg.New("incons")
	g.AddSignal("x", stg.Output)
	a := g.Rise("x")
	b := g.Rise("x")
	g.Net.Chain(a, b)
	g.Net.Implicit(b, a, 1)
	if _, err := BuildSG(g, Options{}); err == nil ||
		!strings.Contains(err.Error(), "consistent") {
		t.Fatalf("want consistency error, got %v", err)
	}
}

func TestBuildSGDetectsPathInconsistency(t *testing.T) {
	// Two concurrent x+ transitions: the same marking is reached with
	// different parities of x.
	g := stg.New("pathincons")
	g.AddSignal("a", stg.Input)
	g.AddSignal("x", stg.Output)
	ap := g.Rise("a")
	x1 := g.Rise("x")
	x2 := g.Rise("x")
	join := g.Fall("a")
	n := g.Net
	n.Implicit(ap, x1, 0)
	n.Implicit(ap, x2, 0)
	n.Implicit(x1, join, 0)
	n.Implicit(x2, join, 0)
	n.Implicit(join, ap, 1)
	if _, err := BuildSG(g, Options{}); err == nil ||
		!strings.Contains(err.Error(), "consistent") {
		t.Fatalf("want consistency error, got %v", err)
	}
}

func TestBuildSGToggles(t *testing.T) {
	// Two toggle transitions in a ring: x alternates 0,1,0,1 — the SG
	// tracks (marking, code) pairs and normalizes every arc to a concrete
	// edge.
	g := stg.New("tog")
	g.AddSignal("x", stg.Output)
	a := g.AddTransition(0, stg.Toggle)
	b := g.AddTransition(0, stg.Toggle)
	g.Net.Chain(a, b)
	g.Net.Implicit(b, a, 1)
	sg, err := BuildSG(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumStates() != 2 {
		t.Fatalf("states = %d, want 2", sg.NumStates())
	}
	// Arc labels are concrete edges.
	for s, arcs := range sg.Out {
		for _, arc := range arcs {
			if arc.Event.Dir == stg.Toggle {
				t.Fatal("toggle arcs must be normalized")
			}
			if arc.Event.Name != "x+" && arc.Event.Name != "x-" {
				t.Fatalf("arc name %q", arc.Event.Name)
			}
			_ = s
		}
	}
	if sg.States[sg.Initial].Code != 0 {
		t.Fatal("toggle SG starts at all-zero code")
	}
}

// A toggle spec where the same marking recurs with different codes: the
// (marking, code) state space distinguishes them.
func TestBuildSGToggleDistinguishesPhases(t *testing.T) {
	// Single toggle transition self-cycle: marking repeats every firing but
	// the code alternates: 2 states.
	g := stg.New("tog1")
	g.AddSignal("x", stg.Output)
	a := g.AddTransition(0, stg.Toggle)
	g.Net.Implicit(a, a, 1)
	sg, err := BuildSG(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumStates() != 2 {
		t.Fatalf("phases not distinguished: %d states", sg.NumStates())
	}
}

func TestBuildSGDummiesKeepCode(t *testing.T) {
	g := stg.New("dum")
	g.AddSignal("x", stg.Output)
	xp := g.Rise("x")
	eps := g.AddDummy("eps")
	xm := g.Fall("x")
	g.Net.Chain(xp, eps, xm)
	g.Net.Implicit(xm, xp, 1)
	sg, err := BuildSG(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumStates() != 3 {
		t.Fatalf("states = %d, want 3", sg.NumStates())
	}
	if !sg.HasDummy() {
		t.Fatal("dummy arc must be reported")
	}
	// The dummy arc must connect two states with the same code.
	for s, arcs := range sg.Out {
		for _, a := range arcs {
			if a.Event.Sig < 0 && sg.States[s].Code != sg.States[a.To].Code {
				t.Fatal("dummy transition changed the code")
			}
		}
	}
}

// TestFig4ReadSG is the E-F4 acceptance test: the READ-cycle SG of Figure 4
// has exactly 14 states, and the two underlined states share code 10110
// (<DSr,DTACK,LDTACK,LDS,D>) with different excitation for LDS and D.
func TestFig4ReadSG(t *testing.T) {
	sg, err := BuildSG(vme.ReadSTG(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumStates() != 14 {
		t.Fatalf("Fig 4 SG: %d states, want 14\n%s", sg.NumStates(), sg.Dump())
	}
	// Initial state: all signals low, DSr excited.
	if sg.States[sg.Initial].Code != 0 {
		t.Fatalf("initial code %s, want 00000", sg.States[sg.Initial].Code.String(5))
	}
	// Exactly one pair of states shares a code.
	byCode := sg.StatesByCode()
	var confl []int
	for _, grp := range byCode {
		if len(grp) > 1 {
			if len(grp) != 2 || confl != nil {
				t.Fatalf("want exactly one conflicting pair, got %v", byCode)
			}
			confl = grp
		}
	}
	if confl == nil {
		t.Fatal("expected one code conflict (the CSC problem of Fig 4)")
	}
	code := sg.States[confl[0]].Code
	order := []string{"DSr", "DTACK", "LDTACK", "LDS", "D"}
	got := ""
	for _, name := range order {
		if code.Bit(sg.SignalIndex(name)) {
			got += "1"
		} else {
			got += "0"
		}
	}
	if got != "10110" {
		t.Fatalf("conflict code = %s, want 10110", got)
	}
	// LDS and D excitation differ between the two states.
	for _, name := range []string{"LDS", "D"} {
		sig := sg.SignalIndex(name)
		_, exA := sg.Excited(confl[0], sig)
		_, exB := sg.Excited(confl[1], sig)
		if exA == exB {
			t.Fatalf("signal %s must have differing excitation in the conflict pair", name)
		}
	}
	// 14 states, 13 distinct codes.
	if sg.DistinctCodes() != 13 {
		t.Fatalf("distinct codes = %d, want 13", sg.DistinctCodes())
	}
}

// TestFig3WaveformEqualsSTG cross-checks the two construction paths.
func TestFig3WaveformEqualsSTG(t *testing.T) {
	g := vme.ReadSTG()
	if !g.Net.IsMarkedGraph() {
		t.Fatal("Fig 3 STG must be a marked graph")
	}
	if !g.Net.StronglyConnected() {
		t.Fatal("Fig 3 STG must be strongly connected")
	}
	if g.Net.InitialMarking().Tokens() != 2 {
		t.Fatal("Fig 3 initial marking has two tokens")
	}
}

// TestFig5ReadWrite checks the choice structure of Figure 5 and that the
// combined SG is consistent and safe.
func TestFig5ReadWrite(t *testing.T) {
	g := vme.ReadWriteSTG()
	choices := g.Net.ChoicePlaces()
	if len(choices) != 2 {
		t.Fatalf("Fig 5 has 2 choice places, got %d", len(choices))
	}
	if g.Net.IsMarkedGraph() {
		t.Fatal("Fig 5 STG has choice: not a marked graph")
	}
	sg, err := BuildSG(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumStates() < 20 {
		t.Fatalf("read+write SG suspiciously small: %d states", sg.NumStates())
	}
	if len(sg.Deadlocks()) != 0 {
		t.Fatal("read+write SG must be deadlock-free")
	}
	// Both request transitions are enabled initially (the environment's
	// choice), and they disable each other.
	var names []string
	for _, a := range sg.Out[sg.Initial] {
		names = append(names, a.Event.Name)
	}
	if len(names) != 2 {
		t.Fatalf("initial state must offer the read/write choice, got %v", names)
	}
}
