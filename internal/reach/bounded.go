package reach

import (
	"fmt"

	"repro/internal/petri"
)

// Boundedness check (the first implementability property of Section 2.1:
// "boundedness of the PN to guarantee that the specified state space is
// finite"). Unboundedness of a Petri net is witnessed by a firing sequence
// reaching a marking strictly covering an earlier one (Karp–Miller): the
// pumping segment can repeat forever.

// BoundedResult reports the outcome of CheckBounded.
type BoundedResult struct {
	Bounded bool
	// Bound is the largest token count seen in any place (valid when
	// Bounded).
	Bound int
	// Witness holds, for unbounded nets, the covering pair (smaller,
	// larger) proving unboundedness.
	Witness [2]petri.Marking
}

// CheckBounded explores the reachability tree with the Karp–Miller covering
// criterion: a branch reaching a marking that strictly covers one of its
// ancestors proves unboundedness. Verdicts are sound in both directions —
// "bounded" means the full (finite) reachability set was enumerated,
// "unbounded" carries a covering-pair witness; an inconclusive run (the
// maxStates budget, 0 = 1<<20, ran out first) returns an error instead of a
// verdict.
func CheckBounded(n *petri.Net, maxStates int) (*BoundedResult, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	res := &BoundedResult{Bounded: true, Bound: 0}
	seen := map[string]bool{}
	type frame struct {
		m petri.Marking
		// ancestors along the current DFS path.
		path []petri.Marking
	}
	init := n.InitialMarking()
	stack := []frame{{m: init}}
	seen[init.Key()] = true
	count := 0
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		if count > maxStates {
			return nil, fmt.Errorf("reach: boundedness check exceeded %d states", maxStates)
		}
		for _, v := range fr.m {
			if int(v) > res.Bound {
				res.Bound = int(v)
			}
		}
		for t := range n.Transitions {
			if !n.Enabled(fr.m, t) {
				continue
			}
			next := n.Fire(fr.m, t)
			// Token counts near the byte-marking ceiling are treated as
			// unboundedness evidence before the representation could wrap.
			for _, v := range next {
				if v >= 200 {
					res.Bounded = false
					res.Witness = [2]petri.Marking{fr.m.Clone(), next.Clone()}
					return res, nil
				}
			}
			for _, anc := range append(fr.path, fr.m) {
				if strictlyCovers(next, anc) {
					res.Bounded = false
					res.Witness = [2]petri.Marking{anc.Clone(), next.Clone()}
					return res, nil
				}
			}
			if seen[next.Key()] {
				continue
			}
			seen[next.Key()] = true
			path := append(append([]petri.Marking(nil), fr.path...), fr.m)
			stack = append(stack, frame{m: next, path: path})
		}
	}
	return res, nil
}

// strictlyCovers reports a >= b componentwise with at least one strict
// inequality.
func strictlyCovers(a, b petri.Marking) bool {
	strict := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}
