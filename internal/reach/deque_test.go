package reach

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestDequeOwnerLIFOStealFIFO pins the sequential contract: the owner pops
// in LIFO order, thieves steal in FIFO order, and growth preserves the
// live window.
func TestDequeOwnerLIFOStealFIFO(t *testing.T) {
	d := newWSDeque()
	if d.pop() != nil || d.steal() != nil {
		t.Fatal("empty deque must yield nil")
	}
	// Push past the initial ring size to force a growth copy.
	n := initialDequeSize * 3
	for i := 0; i < n; i++ {
		d.push(&wsTask{id: int32(i)})
	}
	if tk := d.steal(); tk == nil || tk.id != 0 {
		t.Fatalf("steal got %+v, want id 0 (FIFO)", tk)
	}
	if tk := d.pop(); tk == nil || tk.id != int32(n-1) {
		t.Fatalf("pop got %+v, want id %d (LIFO)", tk, n-1)
	}
	seen := 0
	for d.pop() != nil {
		seen++
	}
	if seen != n-2 {
		t.Fatalf("drained %d tasks, want %d", seen, n-2)
	}
}

// TestDequeConcurrentStealExactlyOnce runs one owner producing and popping
// against several thieves: every pushed task must be consumed exactly
// once. Run under -race this exercises the CAS races on top.
func TestDequeConcurrentStealExactlyOnce(t *testing.T) {
	const thieves, tasks = 4, 20000
	d := newWSDeque()
	taken := make([]atomic.Int32, tasks)
	var consumed atomic.Int64
	var done atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if tk := d.steal(); tk != nil {
					taken[tk.id].Add(1)
					consumed.Add(1)
				}
			}
		}()
	}
	for i := 0; i < tasks; i++ {
		d.push(&wsTask{id: int32(i)})
		if i%3 == 0 {
			if tk := d.pop(); tk != nil {
				taken[tk.id].Add(1)
				consumed.Add(1)
			}
		}
	}
	for consumed.Load() < tasks {
		if tk := d.pop(); tk != nil {
			taken[tk.id].Add(1)
			consumed.Add(1)
		}
	}
	done.Store(true)
	wg.Wait()
	for i := range taken {
		if got := taken[i].Load(); got != 1 {
			t.Fatalf("task %d consumed %d times", i, got)
		}
	}
}
