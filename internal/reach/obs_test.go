package reach

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// TestObsCountersSequential checks that an enabled registry sees the explicit
// engine's counters and an engine span after a sequential exploration.
func TestObsCountersSequential(t *testing.T) {
	reg := obs.NewRegistry()
	root := reg.Root("flow:test")
	g, err := Explore(gen.IndependentToggles(6), Options{Obs: root})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	snap := reg.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["reach.states"]; got != int64(g.NumStates()) {
		t.Fatalf("reach.states = %d, want %d", got, g.NumStates())
	}
	if got := snap.Counters["reach.arcs"]; got != int64(g.NumArcs()) {
		t.Fatalf("reach.arcs = %d, want %d", got, g.NumArcs())
	}
	if snap.Counters["reach.budget_checks"] == 0 {
		t.Fatal("reach.budget_checks must be non-zero")
	}
	if !hasSpan(snap, "engine:explicit") {
		t.Fatalf("no engine:explicit span in %+v", snap.Spans)
	}
}

// TestObsCountersParallel checks the work-stealing engine's contention
// counters (expanded, steals, cas_retries, resizes), worker gauge, worker
// spans and the join event.
func TestObsCountersParallel(t *testing.T) {
	reg := obs.NewRegistry()
	root := reg.Root("flow:test")
	g, err := Explore(gen.IndependentToggles(6), Options{Workers: 4, Obs: root})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	snap := reg.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["reach.states"]; got != int64(g.NumStates()) {
		t.Fatalf("reach.states = %d, want %d", got, g.NumStates())
	}
	// Every state is expanded exactly once, whatever the steal schedule.
	if got := snap.Counters["reach.expanded"]; got != int64(g.NumStates()) {
		t.Fatalf("reach.expanded = %d, want %d", got, g.NumStates())
	}
	for _, name := range []string{"reach.steals", "reach.cas_retries", "reach.resizes"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("contention counter %s missing from snapshot", name)
		}
	}
	if snap.Gauges["reach.workers"] != 4 {
		t.Fatalf("reach.workers = %d, want 4", snap.Gauges["reach.workers"])
	}
	if !hasSpan(snap, "worker:reach-1") {
		t.Fatalf("no worker:reach-1 span in %+v", snap.Spans)
	}
	for _, sp := range snap.Spans {
		if sp.Name == "engine:explicit-parallel" {
			if len(sp.Events) == 0 {
				t.Fatal("parallel engine span has no join event")
			}
			return
		}
	}
	t.Fatalf("no engine:explicit-parallel span in %+v", snap.Spans)
}

// TestObsNilIsInert makes sure exploration with no span behaves identically.
func TestObsNilIsInert(t *testing.T) {
	net := gen.IndependentToggles(5)
	plain, err := Explore(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	root := reg.Root("flow:test")
	observed, err := Explore(net, Options{Obs: root})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumStates() != observed.NumStates() || plain.NumArcs() != observed.NumArcs() {
		t.Fatalf("observation changed the result: %d/%d vs %d/%d",
			plain.NumStates(), plain.NumArcs(), observed.NumStates(), observed.NumArcs())
	}
}

func hasSpan(snap *obs.Snapshot, name string) bool {
	for _, sp := range snap.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}
