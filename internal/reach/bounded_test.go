package reach

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/vme"
)

func TestBoundedSafeNets(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  *petri.Net
	}{
		{"vme-read", vme.ReadSTG().Net},
		{"vme-rw", vme.ReadWriteSTG().Net},
		{"phil-3", gen.Philosophers(3)},
	} {
		res, err := CheckBounded(tc.net, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Bounded || res.Bound != 1 {
			t.Fatalf("%s: bounded=%v bound=%d, want safe", tc.name, res.Bounded, res.Bound)
		}
	}
}

func TestBoundedNonSafe(t *testing.T) {
	// 2-token ring: bounded with bound 2.
	net := gen.MarkedGraphRing(4, 2)
	res, err := CheckBounded(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bounded || res.Bound != 2 {
		t.Fatalf("ring-4-2: bounded=%v bound=%d", res.Bounded, res.Bound)
	}
}

func TestUnboundedDetected(t *testing.T) {
	// t consumes from p and produces into p and q: q grows forever.
	net := petri.New("pump")
	p := net.AddPlace("p", 1)
	q := net.AddPlace("q", 0)
	tt := net.AddTransition("t")
	net.ArcPT(p, tt)
	net.ArcTP(tt, p)
	net.ArcTP(tt, q)
	res, err := CheckBounded(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bounded {
		t.Fatal("pump net must be unbounded")
	}
	small, large := res.Witness[0], res.Witness[1]
	if !strictlyCovers(large, small) {
		t.Fatal("witness must be a strict covering pair")
	}
}

func TestUnboundedProducerChain(t *testing.T) {
	// Source transition with a marked self-loop feeding a sink place.
	net := petri.New("chain")
	src := net.AddPlace("src", 1)
	sink := net.AddPlace("sink", 0)
	a := net.AddTransition("a")
	b := net.AddTransition("b")
	net.ArcPT(src, a)
	net.ArcTP(a, src)
	net.ArcTP(a, sink)
	net.ArcPT(sink, b)
	res, err := CheckBounded(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bounded {
		t.Fatal("must be unbounded (a pumps sink faster than b drains)")
	}
}

func TestBoundedStateLimit(t *testing.T) {
	if _, err := CheckBounded(gen.IndependentToggles(12), 10); err == nil {
		t.Fatal("state limit must be enforced")
	}
}
