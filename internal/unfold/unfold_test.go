package unfold

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/reach"
	"repro/internal/vme"
)

func TestPrefixToggleCompleteness(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		net := gen.IndependentToggles(k)
		u, err := Build(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rg, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cuts := u.ReachableMarkings()
		if len(cuts) != rg.NumStates() {
			t.Fatalf("toggles-%d: prefix cuts %d vs explicit %d", k, len(cuts), rg.NumStates())
		}
		for _, m := range rg.Markings {
			if !cuts[m.Key()] {
				t.Fatalf("toggles-%d: marking %s missing from prefix", k, m.Format(net))
			}
		}
		// Prefix grows linearly while the RG is 2^k.
		_, events, _ := u.Stats()
		if events > 4*k {
			t.Fatalf("toggles-%d: prefix has %d events, expected O(k)", k, events)
		}
	}
}

func TestPrefixVMERead(t *testing.T) {
	g := vme.ReadSTG()
	u, err := Build(g.Net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := reach.Explore(g.Net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cuts := u.ReachableMarkings()
	if len(cuts) != rg.NumStates() {
		t.Fatalf("read cycle: prefix cuts %d vs explicit %d", len(cuts), rg.NumStates())
	}
	conds, events, cutoffs := u.Stats()
	if cutoffs == 0 {
		t.Fatal("a cyclic net needs cutoff events")
	}
	if conds == 0 || events == 0 {
		t.Fatal("empty prefix")
	}
}

func TestPrefixReadWriteChoice(t *testing.T) {
	g := vme.ReadWriteSTG()
	u, err := Build(g.Net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := reach.Explore(g.Net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cuts := u.ReachableMarkings()
	if len(cuts) != rg.NumStates() {
		t.Fatalf("read/write: prefix cuts %d vs explicit %d", len(cuts), rg.NumStates())
	}
	// The two request events must be in conflict; find them.
	var dsr, dsw = -1, -1
	for e := range u.Events {
		switch g.Net.Transitions[u.Events[e].Trans].Name {
		case "DSr+":
			if dsr < 0 {
				dsr = e
			}
		case "DSw+":
			if dsw < 0 {
				dsw = e
			}
		}
	}
	if dsr < 0 || dsw < 0 {
		t.Fatal("request events missing from prefix")
	}
	if !u.Conflict(dsr, dsw) {
		t.Fatal("DSr+ and DSw+ must be in conflict")
	}
	if u.Concurrent(dsr, dsw) || u.Causal(dsr, dsw) {
		t.Fatal("relation misclassification")
	}
}

func TestOrderingRelationsReadCycle(t *testing.T) {
	g := vme.ReadSTG()
	u, err := Build(g.Net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) int {
		for e := range u.Events {
			if g.Net.Transitions[u.Events[e].Trans].Name == name {
				return e
			}
		}
		t.Fatalf("event %s not in prefix", name)
		return -1
	}
	dsr := find("DSr+")
	lds := find("LDS+")
	dtackM := find("DTACK-")
	ldsM := find("LDS-")
	if !u.Causal(dsr, lds) {
		t.Fatal("DSr+ < LDS+ expected")
	}
	// The paper's concurrency pairs: DTACK- || LDS-.
	if !u.Concurrent(dtackM, ldsM) {
		t.Fatal("DTACK- and LDS- must be concurrent")
	}
	if u.Conflict(dtackM, ldsM) {
		t.Fatal("no conflict in a marked graph")
	}
}

func TestPrefixLimits(t *testing.T) {
	net := gen.IndependentToggles(4)
	if _, err := Build(net, Options{MaxEvents: 2}); err == nil {
		t.Fatal("event limit must be enforced")
	}
	unsafe := gen.MarkedGraphRing(2, 1)
	unsafe.Places[0].Initial = 2
	if _, err := Build(unsafe, Options{}); err == nil {
		t.Fatal("unsafe initial marking must be rejected")
	}
}
