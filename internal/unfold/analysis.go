package unfold

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/petri"
)

// Relation classifies an ordered event pair of the prefix (the ordering
// relations of reference [15], extracted from the acyclic structure).
type Relation int

const (
	// Precedes: e1 < e2 causally.
	Precedes Relation = iota
	// Follows: e2 < e1.
	Follows
	// InConflict: the events exclude each other (choice).
	InConflict
	// Concurrent: the events can fire independently.
	Concurrent
)

func (r Relation) String() string {
	switch r {
	case Precedes:
		return "<"
	case Follows:
		return ">"
	case InConflict:
		return "#"
	case Concurrent:
		return "co"
	}
	return "?"
}

// RelationOf classifies the pair (e1, e2); e1 == e2 is reported as
// Concurrent by convention of callers that skip the diagonal.
func (u *Prefix) RelationOf(e1, e2 int) Relation {
	switch {
	case u.Causal(e1, e2):
		return Precedes
	case u.Causal(e2, e1):
		return Follows
	case u.Conflict(e1, e2):
		return InConflict
	default:
		return Concurrent
	}
}

// Relations computes the full pairwise relation matrix of the prefix's
// events. For transitions of the original net this exposes the
// concurrency/conflict structure without ever building the state graph.
func (u *Prefix) Relations() [][]Relation {
	n := len(u.Events)
	out := make([][]Relation, n)
	for i := range out {
		out[i] = make([]Relation, n)
		for j := range out[i] {
			if i != j {
				out[i][j] = u.RelationOf(i, j)
			} else {
				out[i][j] = Concurrent
			}
		}
	}
	return out
}

// TransitionRelation lifts the event relation to original transitions: two
// transitions are reported concurrent if ANY pair of their occurrences is
// concurrent (potential to fire at the same time, Section 1.3).
func (u *Prefix) TransitionRelation(t1, t2 int) (concurrent, conflict bool) {
	for e1 := range u.Events {
		if u.Events[e1].Trans != t1 {
			continue
		}
		for e2 := range u.Events {
			if u.Events[e2].Trans != t2 || e1 == e2 {
				continue
			}
			switch u.RelationOf(e1, e2) {
			case Concurrent:
				concurrent = true
			case InConflict:
				conflict = true
			}
		}
	}
	return concurrent, conflict
}

// DeadlockCheck searches the prefix's cuts for markings that enable no
// transition of the original net. It returns one witness marking per
// deadlock class, using the complete prefix as the search space (sound and
// complete for safe nets because the prefix represents every reachable
// marking).
func (u *Prefix) DeadlockCheck() []petri.Marking {
	seen := map[string]bool{}
	var out []petri.Marking
	for key := range u.ReachableMarkings() {
		m := petri.Marking(key)
		if len(u.Net.EnabledList(m)) == 0 && !seen[key] {
			seen[key] = true
			out = append(out, m.Clone())
		}
	}
	return out
}

// Summary renders prefix statistics.
func (u *Prefix) Summary() string {
	c, e, k := u.Stats()
	return fmt.Sprintf("prefix: %d conditions, %d events, %d cutoffs", c, e, k)
}

// WriteDOT renders the occurrence net in Graphviz DOT format: conditions as
// circles (labeled with their place), events as boxes (labeled with their
// transition), cutoff events dashed.
func (u *Prefix) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", u.Net.Name+"-prefix")
	for c := range u.Conditions {
		fmt.Fprintf(&b, "  c%d [shape=circle, label=%q];\n",
			c, u.Net.Places[u.Conditions[c].Place].Name)
	}
	for e := range u.Events {
		style := ""
		if u.Events[e].Cutoff {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  e%d [shape=box, label=%q%s];\n",
			e, u.Net.Transitions[u.Events[e].Trans].Name, style)
	}
	for e := range u.Events {
		for _, c := range u.Events[e].Pre {
			fmt.Fprintf(&b, "  c%d -> e%d;\n", c, e)
		}
		for _, c := range u.Events[e].Post {
			fmt.Fprintf(&b, "  e%d -> c%d;\n", e, c)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
