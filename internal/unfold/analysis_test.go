package unfold

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/reach"
	"repro/internal/vme"
)

// TestConcurrencyPairsFromPrefix reproduces the Section 1.3 concurrency
// analysis without building the state graph: the paper's four concurrent
// pairs of the READ cycle are recovered from the unfolding.
func TestConcurrencyPairsFromPrefix(t *testing.T) {
	g := vme.ReadSTG()
	u, err := Build(g.Net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := func(name string) int {
		i := g.Net.TransitionIndex(name)
		if i < 0 {
			t.Fatalf("no transition %s", name)
		}
		return i
	}
	wantConcurrent := [][2]string{
		{"DTACK-", "LDS-"},
		{"DTACK-", "LDTACK-"},
		{"DSr+", "LDS-"},
		{"DSr+", "LDTACK-"},
	}
	for _, pair := range wantConcurrent {
		co, conf := u.TransitionRelation(tr(pair[0]), tr(pair[1]))
		if !co || conf {
			t.Fatalf("%s || %s expected (co=%v conflict=%v)", pair[0], pair[1], co, conf)
		}
	}
	// Sequenced transitions are not concurrent.
	co, _ := u.TransitionRelation(tr("DSr+"), tr("LDS+"))
	if co {
		t.Fatal("DSr+ strictly precedes LDS+ in every cycle window")
	}
}

func TestConflictRelationReadWrite(t *testing.T) {
	g := vme.ReadWriteSTG()
	u, err := Build(g.Net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, conflict := u.TransitionRelation(
		g.Net.TransitionIndex("DSr+"), g.Net.TransitionIndex("DSw+"))
	if !conflict {
		t.Fatal("the read/write requests must be in conflict")
	}
}

func TestRelationsMatrix(t *testing.T) {
	net := gen.IndependentToggles(2)
	u, err := Build(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel := u.Relations()
	if len(rel) != len(u.Events) {
		t.Fatal("matrix shape")
	}
	// Occurrences of independent toggles are concurrent; within one toggle
	// they are ordered.
	for e1 := range u.Events {
		for e2 := range u.Events {
			if e1 == e2 {
				continue
			}
			sameToggle := net.Transitions[u.Events[e1].Trans].Name[1] ==
				net.Transitions[u.Events[e2].Trans].Name[1]
			r := rel[e1][e2]
			if sameToggle && r == Concurrent {
				t.Fatalf("events of one toggle must be ordered, got %v", r)
			}
			if !sameToggle && r != Concurrent {
				t.Fatalf("events of different toggles must be concurrent, got %v", r)
			}
		}
	}
	for _, r := range []Relation{Precedes, Follows, InConflict, Concurrent} {
		if r.String() == "?" {
			t.Fatal("relation rendering")
		}
	}
}

// TestDeadlockCheckAgainstExplicit: the prefix finds exactly the explicit
// deadlocks on the philosophers and none on live nets.
func TestDeadlockCheckAgainstExplicit(t *testing.T) {
	phil := gen.Philosophers(3)
	u, err := Build(phil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dead := u.DeadlockCheck()
	rg, err := reach.Explore(phil, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if (len(dead) > 0) != (len(rg.Deadlocks()) > 0) {
		t.Fatalf("prefix deadlocks %d vs explicit %d", len(dead), len(rg.Deadlocks()))
	}
	for _, m := range dead {
		if len(phil.EnabledList(m)) != 0 {
			t.Fatal("false deadlock witness")
		}
	}
	live := vme.ReadSTG().Net
	u2, err := Build(live, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(u2.DeadlockCheck()) != 0 {
		t.Fatal("read cycle is deadlock-free")
	}
	if !strings.Contains(u2.Summary(), "events") {
		t.Fatal("summary rendering")
	}
}

func TestPrefixWriteDOT(t *testing.T) {
	u, err := Build(vme.ReadSTG().Net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := u.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "style=dashed", "shape=box", "shape=circle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q", want)
		}
	}
}
