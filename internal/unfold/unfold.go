// Package unfold implements McMillan-style finite complete prefixes of safe
// Petri net unfoldings (Section 2.2): acyclic occurrence nets representing
// all reachable markings, often far more compact than the reachability graph
// and well suited for extracting ordering relations (causality, conflict,
// concurrency) between events.
package unfold

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/petri"
)

// Condition is an occurrence of a place.
type Condition struct {
	Place    int
	Producer int // event index, or -1 for initial conditions
	// Consumers lists the events consuming this condition (>1 = conflict).
	Consumers []int
	// Frozen marks conditions produced by cutoff events: they belong to
	// cuts but never enable further events.
	Frozen bool
}

// Event is an occurrence of a transition.
type Event struct {
	Trans  int
	Pre    []int // condition indexes
	Post   []int
	Cutoff bool
	// LocalSize is |[e]|, the size of the local configuration.
	LocalSize int
	// Mark is the marking reached by firing exactly [e].
	Mark petri.Marking
}

// Prefix is a finite complete prefix.
type Prefix struct {
	Net        *petri.Net
	Conditions []Condition
	Events     []Event
	NumCutoffs int

	// hist[e] = bitset of events causally <= e (including e).
	hist []bitset
	// co[c] = bitset of conditions concurrent with c, maintained
	// incrementally as conditions are added (see addCondition). The possible
	//-extension search asks the concurrency question for quadratically many
	// condition pairs; answering from this matrix replaces a history/conflict
	// walk that is itself linear in the prefix size.
	co []bitset
}

// Options bound the construction.
type Options struct {
	MaxEvents int // default 1 << 16
	// Budget adds cancellation and tightens MaxEvents (Budget.MaxEvents);
	// nil is unlimited.
	Budget *budget.Budget
	// Obs is the parent observability span: the construction records an
	// "engine:unfold" child span and the unfold.* counters (events,
	// conditions, cutoffs, budget checks) into its registry. nil disables
	// observability.
	Obs *obs.Span
}

func (o Options) maxEvents() int {
	cap := o.MaxEvents
	if cap <= 0 {
		cap = 1 << 16
	}
	return o.Budget.EventLimit(cap)
}

// ErrEventLimit is the errors.Is anchor for event-ceiling aborts — an alias
// of budget.Sentinel(budget.Events).
var ErrEventLimit = budget.Sentinel(budget.Events)

// Build computes a finite complete prefix of the net's unfolding using
// McMillan's cutoff criterion (|[e']| < |[e]| with equal markings, or
// Mark([e]) equal to the initial marking).
//
// On an event-ceiling trip or cancellation the partial prefix built so far
// is returned alongside the typed budget error. A partial prefix is not
// complete: it under-approximates the reachable markings.
func Build(n *petri.Net, opts Options) (*Prefix, error) {
	sp := opts.Obs.Child("engine:unfold")
	u, err := build(n, opts, sp)
	if sp != nil {
		if u != nil {
			reg := sp.Registry()
			reg.Counter("unfold.events").Add(int64(len(u.Events)))
			reg.Counter("unfold.conditions").Add(int64(len(u.Conditions)))
			reg.Counter("unfold.cutoffs").Add(int64(u.NumCutoffs))
			sp.Attr("events", strconv.Itoa(len(u.Events)))
			sp.Attr("conditions", strconv.Itoa(len(u.Conditions)))
			sp.Attr("cutoffs", strconv.Itoa(u.NumCutoffs))
		}
		if err != nil {
			sp.Attr("error", err.Error())
		}
		sp.End()
	}
	return u, err
}

func build(n *petri.Net, opts Options, sp *obs.Span) (*Prefix, error) {
	u := &Prefix{Net: n}
	init := n.InitialMarking()
	if !init.Safe() {
		return nil, fmt.Errorf("unfold: initial marking not safe")
	}
	for p, tokens := range init {
		if tokens == 1 {
			u.Conditions = append(u.Conditions, Condition{Place: p, Producer: -1})
		}
	}
	// Initial conditions form the initial cut: pairwise concurrent. Each row
	// is the full initial cut minus the condition itself.
	full := newBitset(len(u.Conditions))
	for c := range u.Conditions {
		full.set(c)
	}
	for c := range u.Conditions {
		row := append(bitset(nil), full...)
		row[c/64] &^= 1 << uint(c%64)
		u.co = append(u.co, row)
	}

	// Marking seen table: marking key -> smallest local config size.
	seen := map[string]int{init.Key(): 0}

	type pe struct {
		trans     int
		pre       []int
		localSize int
	}
	checks := sp.Registry().Counter("unfold.budget_checks")
	var queue []pe
	addExtensions := func(newCond int) {
		// Any transition consuming the new condition's place may extend.
		place := u.Conditions[newCond].Place
		for _, t := range n.Places[place].Post {
			for _, combo := range u.matchPreset(t, newCond) {
				size := u.localSizeOf(combo) + 1
				queue = append(queue, pe{trans: t, pre: combo, localSize: size})
			}
		}
	}
	for c := range u.Conditions {
		addExtensions(c)
	}

	for len(queue) > 0 {
		// Pop the extension with the smallest local configuration: McMillan's
		// adequate order.
		best := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].localSize < queue[best].localSize {
				best = i
			}
		}
		ext := queue[best]
		queue = append(queue[:best], queue[best+1:]...)

		// The same (trans, preset) may have been enqueued twice.
		if u.duplicateEvent(ext.trans, ext.pre) {
			continue
		}
		if maxEvents := opts.maxEvents(); len(u.Events) >= maxEvents {
			return u, budget.LimitEvents(maxEvents, len(u.Events))
		}
		if opts.Budget.Hooked() || len(u.Events)%64 == 0 {
			// Event extension is heavyweight (possible-extension search is
			// quadratic), so a tighter-than-usual cancellation cadence is
			// still noise.
			checks.Inc()
			if err := opts.Budget.Check("unfold.event"); err != nil {
				return u, err
			}
		}

		eIdx := len(u.Events)
		ev := Event{Trans: ext.trans, Pre: append([]int(nil), ext.pre...)}
		// History bitset.
		h := newBitset(eIdx + 1)
		h.set(eIdx)
		for _, c := range ev.Pre {
			if p := u.Conditions[c].Producer; p >= 0 {
				h.or(u.hist[p])
			}
		}
		ev.LocalSize = h.count()
		// Marking of [e]: the cut before e, minus e's consumed places, plus
		// its produced ones (e's own conditions do not exist yet).
		ev.Mark = u.markOf(h)
		for _, c := range ev.Pre {
			ev.Mark[u.Conditions[c].Place]--
		}
		for _, p := range n.Transitions[ext.trans].Post {
			ev.Mark[p]++
		}
		// Cutoff?
		if prev, ok := seen[ev.Mark.Key()]; ok && prev < ev.LocalSize {
			ev.Cutoff = true
			u.NumCutoffs++
		} else if !ok {
			seen[ev.Mark.Key()] = ev.LocalSize
		} else if prev >= ev.LocalSize {
			seen[ev.Mark.Key()] = ev.LocalSize
		}
		u.Events = append(u.Events, ev)
		u.hist = append(u.hist, h)
		for _, c := range ev.Pre {
			u.Conditions[c].Consumers = append(u.Conditions[c].Consumers, eIdx)
		}
		// A condition is concurrent with e's post-conditions iff it is
		// concurrent with every condition of •e (preset members self-exclude:
		// no condition is concurrent with itself).
		inter := u.coIntersect(ev.Pre)
		for _, p := range n.Transitions[ext.trans].Post {
			cIdx := len(u.Conditions)
			u.Conditions = append(u.Conditions, Condition{Place: p, Producer: eIdx, Frozen: ev.Cutoff})
			u.Events[eIdx].Post = append(u.Events[eIdx].Post, cIdx)
			u.addCoRow(cIdx, inter, u.Events[eIdx].Post)
			if !ev.Cutoff {
				addExtensions(cIdx)
			}
		}
	}
	return u, nil
}

// matchPreset finds all co-sets of conditions matching •t that include mustUse.
func (u *Prefix) matchPreset(t, mustUse int) [][]int {
	pre := u.Net.Transitions[t].Pre
	mustPlace := u.Conditions[mustUse].Place
	found := false
	for _, p := range pre {
		if p == mustPlace {
			found = true
		}
	}
	if !found {
		return nil
	}
	// For each preset place, the candidate conditions.
	var out [][]int
	var combo []int
	var rec func(i int)
	rec = func(i int) {
		if i == len(pre) {
			// mustUse included?
			has := false
			for _, c := range combo {
				if c == mustUse {
					has = true
				}
			}
			if has {
				out = append(out, append([]int(nil), combo...))
			}
			return
		}
		p := pre[i]
		for c := range u.Conditions {
			if u.Conditions[c].Place != p || u.Conditions[c].Frozen {
				continue
			}
			// Pairwise concurrency with already chosen conditions.
			ok := true
			for _, prev := range combo {
				if !u.concurrentConds(prev, c) {
					ok = false
					break
				}
			}
			if ok {
				combo = append(combo, c)
				rec(i + 1)
				combo = combo[:len(combo)-1]
			}
		}
	}
	rec(0)
	return out
}

// coIntersect computes the set of conditions concurrent with every member of
// a co-set (an event preset). The preset's own members drop out for free: a
// condition is never concurrent with itself.
func (u *Prefix) coIntersect(pre []int) bitset {
	out := append(bitset(nil), u.co[pre[0]]...)
	for _, d := range pre[1:] {
		out.and(u.co[d])
	}
	return out
}

// addCoRow installs the concurrency row of a freshly created condition c:
// the preset intersection plus c's siblings (post-conditions of one event
// coexist in the cut it produces), with the symmetric bits mirrored into the
// existing rows.
func (u *Prefix) addCoRow(c int, inter bitset, siblings []int) {
	row := append(bitset(nil), inter...)
	for _, s := range siblings {
		if s != c {
			row.set(s)
		}
	}
	row.forEach(func(b int) { u.co[b].set(c) })
	u.co = append(u.co, row)
}

// concurrentConds reports whether two distinct conditions can coexist in a
// reachable cut: no causality and no conflict between them. Answered from
// the incrementally maintained matrix; concurrentCondsSlow is the
// definitional oracle it is tested against.
func (u *Prefix) concurrentConds(a, b int) bool {
	return a != b && u.co[a].get(b)
}

// concurrentCondsSlow decides concurrency from first principles: walk the
// histories for causality, then scan every condition for a conflict between
// the two histories. Linear in the prefix size per query — kept as the test
// oracle for the cached matrix.
func (u *Prefix) concurrentCondsSlow(a, b int) bool {
	if a == b {
		return false
	}
	ha := u.condHist(a)
	hb := u.condHist(b)
	// Causality: a < b iff some consumer of a is in b's history; and vice
	// versa.
	for _, e := range u.Conditions[a].Consumers {
		if hb.get(e) {
			return false
		}
	}
	for _, e := range u.Conditions[b].Consumers {
		if ha.get(e) {
			return false
		}
	}
	// Conflict: two distinct events in the histories consuming the same
	// condition.
	for c := range u.Conditions {
		var inA, inB []int
		for _, e := range u.Conditions[c].Consumers {
			if ha.get(e) {
				inA = append(inA, e)
			}
			if hb.get(e) {
				inB = append(inB, e)
			}
		}
		for _, ea := range inA {
			for _, eb := range inB {
				if ea != eb {
					return false
				}
			}
		}
	}
	return true
}

// condHist returns the event history of a condition (its producer's closed
// history, or empty for initial conditions).
func (u *Prefix) condHist(c int) bitset {
	p := u.Conditions[c].Producer
	if p < 0 {
		return newBitset(0)
	}
	return u.hist[p]
}

// localSizeOf computes |[e]| - 1 for a prospective event with the given
// preset: the union of the preset's histories.
func (u *Prefix) localSizeOf(pre []int) int {
	h := newBitset(len(u.Events))
	for _, c := range pre {
		if p := u.Conditions[c].Producer; p >= 0 {
			h.or(u.hist[p])
		}
	}
	return h.count()
}

func (u *Prefix) duplicateEvent(t int, pre []int) bool {
	sorted := append([]int(nil), pre...)
	sort.Ints(sorted)
	for _, e := range u.Events {
		if e.Trans != t || len(e.Pre) != len(sorted) {
			continue
		}
		es := append([]int(nil), e.Pre...)
		sort.Ints(es)
		same := true
		for i := range es {
			if es[i] != sorted[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// markOf computes the marking reached by firing exactly the events of h.
func (u *Prefix) markOf(h bitset) petri.Marking {
	m := make(petri.Marking, len(u.Net.Places))
	inConfig := func(e int) bool { return e >= 0 && h.get(e) }
	for c := range u.Conditions {
		prod := u.Conditions[c].Producer
		produced := prod == -1 || inConfig(prod)
		if !produced {
			continue
		}
		consumed := false
		for _, e := range u.Conditions[c].Consumers {
			if inConfig(e) {
				consumed = true
				break
			}
		}
		if !consumed {
			m[u.Conditions[c].Place]++
		}
	}
	return m
}

// Causal reports e1 < e2 in the prefix.
func (u *Prefix) Causal(e1, e2 int) bool {
	return e1 != e2 && u.hist[e2].get(e1)
}

// Conflict reports e1 # e2: their histories branch on a shared condition.
func (u *Prefix) Conflict(e1, e2 int) bool {
	if e1 == e2 || u.Causal(e1, e2) || u.Causal(e2, e1) {
		return false
	}
	h1, h2 := u.hist[e1], u.hist[e2]
	for c := range u.Conditions {
		var inA, inB []int
		for _, e := range u.Conditions[c].Consumers {
			if h1.get(e) {
				inA = append(inA, e)
			}
			if h2.get(e) {
				inB = append(inB, e)
			}
		}
		for _, ea := range inA {
			for _, eb := range inB {
				if ea != eb {
					return true
				}
			}
		}
	}
	return false
}

// Concurrent reports e1 co e2: no order and no conflict.
func (u *Prefix) Concurrent(e1, e2 int) bool {
	return e1 != e2 && !u.Causal(e1, e2) && !u.Causal(e2, e1) && !u.Conflict(e1, e2)
}

// ReachableMarkings enumerates the markings of all reachable cuts of the
// prefix (token game on the acyclic occurrence net), projected onto the
// original net. For a complete prefix this equals the net's reachability
// set; it is the correctness oracle used in tests.
func (u *Prefix) ReachableMarkings() map[string]bool {
	// Occurrence-net state: marking over conditions.
	init := make(petri.Marking, len(u.Conditions))
	for c := range u.Conditions {
		if u.Conditions[c].Producer == -1 {
			init[c] = 1
		}
	}
	seen := map[string]bool{}
	out := map[string]bool{}
	var project func(m petri.Marking) string
	project = func(m petri.Marking) string {
		pm := make(petri.Marking, len(u.Net.Places))
		for c, v := range m {
			if v > 0 {
				pm[u.Conditions[c].Place]++
			}
		}
		return pm.Key()
	}
	stack := []petri.Marking{init}
	seen[init.Key()] = true
	out[project(init)] = true
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for e := range u.Events {
			ok := true
			for _, c := range u.Events[e].Pre {
				if m[c] == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			next := m.Clone()
			for _, c := range u.Events[e].Pre {
				next[c]--
			}
			for _, c := range u.Events[e].Post {
				next[c]++
			}
			if !seen[next.Key()] {
				seen[next.Key()] = true
				out[project(next)] = true
				stack = append(stack, next)
			}
		}
	}
	return out
}

// Stats summarizes the prefix size.
func (u *Prefix) Stats() (conditions, events, cutoffs int) {
	return len(u.Conditions), len(u.Events), u.NumCutoffs
}

// bitset is a compact grow-on-write bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64+1) }

func (b *bitset) ensure(i int) {
	for len(*b) <= i/64 {
		*b = append(*b, 0)
	}
}

func (b *bitset) set(i int) {
	b.ensure(i)
	(*b)[i/64] |= 1 << uint(i%64)
}

func (b bitset) get(i int) bool {
	if i/64 >= len(b) {
		return false
	}
	return b[i/64]&(1<<uint(i%64)) != 0
}

func (b *bitset) or(o bitset) {
	b.ensure(len(o)*64 - 1)
	for i, w := range o {
		(*b)[i] |= w
	}
}

// and intersects b with o in place.
func (b bitset) and(o bitset) {
	for i := range b {
		if i < len(o) {
			b[i] &= o[i]
		} else {
			b[i] = 0
		}
	}
}

// forEach calls f with each set bit's index in increasing order.
func (b bitset) forEach(f func(i int)) {
	for w, word := range b {
		for ; word != 0; word &= word - 1 {
			f(w*64 + bits.TrailingZeros64(word))
		}
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
