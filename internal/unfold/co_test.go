package unfold

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/vme"
)

// TestCoMatrixMatchesSlow checks, over every pair of conditions, that the
// incrementally maintained concurrency matrix agrees with the definitional
// oracle (history walk + conflict scan) — on marked graphs, choice nets and
// nets with cutoff-frozen conditions alike.
func TestCoMatrixMatchesSlow(t *testing.T) {
	models := []struct {
		name string
		net  *petri.Net
	}{
		{"vme-read", vme.ReadSTG().Net},
		{"vme-read-write", vme.ReadWriteSTG().Net},
		{"toggles-4", gen.IndependentToggles(4)},
		{"muller-3", gen.MullerPipeline(3).Net},
		{"phil-3", gen.Philosophers(3)},
		{"cscring-2", gen.CSCRing(2).Net},
	}
	for _, mdl := range models {
		u, err := Build(mdl.net, Options{})
		if err != nil {
			t.Fatalf("%s: %v", mdl.name, err)
		}
		nc := len(u.Conditions)
		if len(u.co) != nc {
			t.Fatalf("%s: %d co rows for %d conditions", mdl.name, len(u.co), nc)
		}
		for a := 0; a < nc; a++ {
			for b := 0; b < nc; b++ {
				want := u.concurrentCondsSlow(a, b)
				if got := u.concurrentConds(a, b); got != want {
					t.Fatalf("%s: concurrentConds(%d,%d)=%v, oracle says %v",
						mdl.name, a, b, got, want)
				}
				if byMatrix := u.co[a].get(b); a != b && byMatrix != want {
					t.Fatalf("%s: co[%d].get(%d)=%v, oracle says %v",
						mdl.name, a, b, byMatrix, want)
				}
			}
		}
	}
}

// TestCoMatrixSymmetric: the mirrored updates must keep the matrix symmetric.
func TestCoMatrixSymmetric(t *testing.T) {
	u, err := Build(vme.ReadWriteSTG().Net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for a := range u.co {
		for b := range u.co {
			if u.co[a].get(b) != u.co[b].get(a) {
				t.Fatalf("co matrix asymmetric at (%d,%d)", a, b)
			}
		}
	}
}

// BenchmarkBuildPrefix tracks the possible-extension search cost the co
// matrix amortizes (BenchmarkUnfoldingVsRG in the top-level suite guards the
// same path on the toggle family).
func BenchmarkBuildPrefix(b *testing.B) {
	models := []struct {
		name string
		net  *petri.Net
	}{
		{"toggles-12", gen.IndependentToggles(12)},
		{"vme-read-write", vme.ReadWriteSTG().Net},
		{"phil-5", gen.Philosophers(5)},
	}
	for _, mdl := range models {
		b.Run(fmt.Sprintf("%s", mdl.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(mdl.net, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
