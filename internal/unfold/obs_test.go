package unfold

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/vme"
)

// TestObsCounters checks that an instrumented unfolding exports its event,
// condition and cutoff totals.
func TestObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	root := reg.Root("flow:test")
	u, err := Build(vme.ReadSTG().Net, Options{Obs: root})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	conds, events, cutoffs := u.Stats()
	snap := reg.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["unfold.events"]; got != int64(events) {
		t.Fatalf("unfold.events = %d, want %d", got, events)
	}
	if got := snap.Counters["unfold.conditions"]; got != int64(conds) {
		t.Fatalf("unfold.conditions = %d, want %d", got, conds)
	}
	if got := snap.Counters["unfold.cutoffs"]; got != int64(cutoffs) {
		t.Fatalf("unfold.cutoffs = %d, want %d", got, cutoffs)
	}
	if snap.Counters["unfold.budget_checks"] == 0 {
		t.Fatal("unfold.budget_checks must be non-zero")
	}
}
