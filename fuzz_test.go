package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/reach"
	"repro/internal/regions"
	"repro/internal/stg"
	"repro/internal/symbolic"
	"repro/internal/unfold"
)

// randomSpec builds a random cyclic marked-graph STG from a synthetic
// waveform: k signals, each rising then falling once per cycle, sequenced by
// a random total order plus random forward causality arcs. Consistency and
// persistency hold by construction; CSC may or may not.
func randomSpec(rng *rand.Rand) *stg.STG {
	k := 2 + rng.Intn(3)
	w := stg.Waveform{Name: fmt.Sprintf("fuzz%d", rng.Int31())}
	for i := 0; i < k; i++ {
		kind := stg.Output
		if i > 0 && rng.Intn(2) == 0 {
			kind = stg.Input
		}
		w.Signals = append(w.Signals, stg.Signal{Name: fmt.Sprintf("s%d", i), Kind: kind})
	}
	// Event order: interleave rises and falls keeping rise-before-fall per
	// signal: generate a random permutation of 2k slots with the
	// constraint, by inserting each signal's pair at random positions.
	type ev struct {
		sig  int
		rise bool
	}
	var order []ev
	for i := 0; i < k; i++ {
		// Insert rise at a random position, fall at a random later one.
		rp := rng.Intn(len(order) + 1)
		order = append(order[:rp], append([]ev{{i, true}}, order[rp:]...)...)
		fp := rp + 1 + rng.Intn(len(order)-rp)
		order = append(order[:fp], append([]ev{{i, false}}, order[fp:]...)...)
	}
	for _, e := range order {
		dir := stg.Fall
		if e.rise {
			dir = stg.Rise
		}
		w.Events = append(w.Events, stg.WaveEvent{Signal: w.Signals[e.sig].Name, Dir: dir})
	}
	n := len(w.Events)
	for i := 0; i+1 < n; i++ {
		w.Causality = append(w.Causality, [2]int{i, i + 1})
	}
	w.Causality = append(w.Causality, [2]int{n - 1, 0})
	// A few random forward concurrency-reducing arcs (harmless in a chain).
	for extra := rng.Intn(3); extra > 0; extra-- {
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(n-i-1)
		w.Causality = append(w.Causality, [2]int{i, j})
	}
	g, err := stg.FromWaveform(w)
	if err != nil {
		panic(err)
	}
	return g
}

// TestFuzzFullFlow: every random spec flows to a verified implementation,
// and the analysis engines agree with each other on it.
func TestFuzzFullFlow(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomSpec(rng)
		sg, err := reach.BuildSG(g, reach.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, g)
		}
		if !sg.IsPersistent() {
			t.Fatalf("seed %d: a marked graph spec must be persistent", seed)
		}
		// Engines agree.
		sym, err := symbolic.Reach(g.Net)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if float64(sg.NumStates()) != sym.Count {
			t.Fatalf("seed %d: explicit %d vs symbolic %v", seed, sg.NumStates(), sym.Count)
		}
		u, err := unfold.Build(g.Net, unfold.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := len(u.ReachableMarkings()); got != sg.NumStates() {
			t.Fatalf("seed %d: prefix cuts %d vs explicit %d", seed, got, sg.NumStates())
		}
		// Flow.
		rep, err := core.Synthesize(g, core.Options{})
		if err != nil {
			if strings.Contains(err.Error(), "state encoding") {
				continue // CSC unsolvable within budget: acceptable for fuzz
			}
			t.Fatalf("seed %d: %v\n%s", seed, err, g)
		}
		if !rep.Verification.OK() {
			t.Fatalf("seed %d: verification failed: %v", seed, rep.Verification.Violations)
		}
	}
}

// TestFuzzRegionsRoundTrip: back-annotation regenerates random SGs exactly
// (state/arc counts and code multisets).
func TestFuzzRegionsRoundTrip(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomSpec(rng)
		sg, err := reach.BuildSG(g, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		back, err := regions.Synthesize(sg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sg2, err := reach.BuildSG(back, reach.Options{})
		if err != nil {
			t.Fatalf("seed %d: rebuilt SG: %v", seed, err)
		}
		if sg2.NumStates() != sg.NumStates() || sg2.NumArcs() != sg.NumArcs() {
			t.Fatalf("seed %d: round trip %d/%d -> %d/%d", seed,
				sg.NumStates(), sg.NumArcs(), sg2.NumStates(), sg2.NumArcs())
		}
	}
}

// TestFuzzGRoundTrip: .g serialization is stable on random specs.
func TestFuzzGRoundTrip(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomSpec(rng)
		var a strings.Builder
		if err := g.WriteG(&a); err != nil {
			t.Fatal(err)
		}
		g2, err := stg.ParseG(strings.NewReader(a.String()))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, a.String())
		}
		var b strings.Builder
		if err := g2.WriteG(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("seed %d: unstable serialization", seed)
		}
	}
}
