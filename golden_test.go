package repro

import (
	"os"
	"testing"

	"repro/internal/reach"
	"repro/internal/vme"
)

// TestFig4Golden pins the exact READ-cycle state graph (Figure 4) and the
// regenerated timing diagram (Figure 2): any change to exploration order,
// code assignment or rendering shows up as a diff against the golden files.
func TestFig4Golden(t *testing.T) {
	sg, err := reach.BuildSG(vme.ReadSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		path string
		got  string
	}{
		{"testdata/fig4-sg.golden", sg.Dump()},
		{"testdata/fig4-waveform.golden", sg.ASCIIWaveform(sg.Cycle())},
	} {
		want, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if tc.got != string(want) {
			t.Errorf("%s drifted:\n--- got ---\n%s\n--- want ---\n%s", tc.path, tc.got, want)
		}
	}
}
