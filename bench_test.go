package repro

// The benchmark harness regenerates every figure-level experiment of the
// paper (ids from DESIGN.md). Run with:
//
//	go test -bench=. -benchmem
//
// Scaling sweeps (E-SYM, E-UNF, E-POR) print the engine-vs-engine series
// whose shape Section 2.2 describes: explicit enumeration explodes
// exponentially with concurrency while symbolic, unfolding and stubborn-set
// engines stay polynomial.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/boolmin"
	"repro/internal/burstmode"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/prop"
	"repro/internal/reach"
	"repro/internal/regions"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/structural"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/techmap"
	"repro/internal/timing"
	"repro/internal/unfold"
	"repro/internal/vme"
)

// E-F2/3 — waveform to STG compilation.
func BenchmarkFig3ReadSTG(b *testing.B) {
	w := vme.ReadWaveform()
	for i := 0; i < b.N; i++ {
		if _, err := stg.FromWaveform(w); err != nil {
			b.Fatal(err)
		}
	}
}

// E-F4 — state graph generation of the READ cycle.
func BenchmarkFig4StateGraph(b *testing.B) {
	g := vme.ReadSTG()
	for i := 0; i < b.N; i++ {
		sg, err := reach.BuildSG(g, reach.Options{})
		if err != nil || sg.NumStates() != 14 {
			b.Fatal("wrong SG")
		}
	}
}

// E-F5 — state graph of the READ+WRITE spec with choice.
func BenchmarkFig5ReadWrite(b *testing.B) {
	g := vme.ReadWriteSTG()
	for i := 0; i < b.N; i++ {
		if _, err := reach.BuildSG(g, reach.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E-F6 — linear reductions, SM cover, invariant approximation, dense
// encoding.
func BenchmarkFig6Reductions(b *testing.B) {
	g := vme.ReadWriteSTG()
	for i := 0; i < b.N; i++ {
		reduced, _ := structural.Reduce(g.Net)
		if _, ok := structural.SMCover(reduced); !ok {
			b.Fatal("no SM cover")
		}
		if _, err := symbolic.NewDense(reduced); err != nil {
			b.Fatal(err)
		}
	}
}

// E-F7 — CSC resolution by state-signal insertion (manual paper solution).
func BenchmarkFig7CSC(b *testing.B) {
	g := vme.ReadSTG()
	lds := g.Net.TransitionIndex("LDS+")
	dm := g.Net.TransitionIndex("D-")
	for i := 0; i < b.N; i++ {
		g2, err := encoding.InsertSignal(g, "csc0", lds, dm)
		if err != nil {
			b.Fatal(err)
		}
		sg, err := reach.BuildSG(g2, reach.Options{})
		if err != nil || !sg.HasCSC() {
			b.Fatal("CSC not resolved")
		}
	}
}

// E-F7b — automatic CSC solving (search over insertion points). The worker
// sweep on the generated conflict-rich ring measures the parallel candidate
// search: shared signature memo, scratch arenas, fan-out over the pool. The
// chosen insertion is bit-identical at every worker count.
func BenchmarkSolveCSC(b *testing.B) {
	b.Run("vme-read", func(b *testing.B) {
		g := vme.ReadSTG()
		for i := 0; i < b.N; i++ {
			if _, err := encoding.SolveCSC(g, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	ring := gen.CSCRing(3)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cscring-3/w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := encoding.SolveCSCOpts(ring, 3, encoding.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E-EQ — next-state function derivation and minimization. The worker sweep
// on the solved conflict-rich ring measures the shared-extraction deriver:
// one state-graph pass for all signals, one shared don't-care set, pooled
// minimizer scratch. Functions are bit-identical at every worker count.
func BenchmarkEquationDerivation(b *testing.B) {
	b.Run("vme-read", func(b *testing.B) {
		g := vme.ReadSTG()
		g2, err := encoding.InsertSignal(g, "csc0",
			g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
		if err != nil {
			b.Fatal(err)
		}
		sg, err := reach.BuildSG(g2, reach.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := logic.DeriveAll(sg); err != nil {
				b.Fatal(err)
			}
		}
	})
	sol, err := encoding.SolveCSC(gen.CSCRing(2), 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cscring-2/w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := logic.DeriveAllOpts(sol.SG, logic.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E-F8 — synthesis + speed-independence verification per architecture.
func BenchmarkFig8Verify(b *testing.B) {
	g := vme.ReadSTG()
	spec, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		b.Fatal(err)
	}
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, style := range []logic.Style{logic.ComplexGate, logic.GeneralizedC, logic.StandardC} {
		b.Run(style.String(), func(b *testing.B) {
			nl, err := logic.Synthesize(sg, style)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Verify(nl, spec, sim.Options{})
				if err != nil || !res.OK() {
					b.Fatal("verification failed")
				}
			}
		})
	}
}

// E-F9 — hazard-aware decomposition to a two-input library.
func BenchmarkFig9Map(b *testing.B) {
	g := vme.ReadSTG()
	spec, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		b.Fatal(err)
	}
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		b.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := techmap.Map(nl, spec, techmap.Options{MaxFanIn: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// E-F10 — back-annotation: PN synthesis from the implementation SG.
func BenchmarkFig10Regions(b *testing.B) {
	sg, err := reach.BuildSG(vme.ReadSTG(), reach.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regions.Synthesize(sg); err != nil {
			b.Fatal(err)
		}
	}
}

// E-F11 — timing-optimized synthesis (both assumptions, Figure 11c).
func BenchmarkFig11Timed(b *testing.B) {
	g := vme.ReadSTG()
	for i := 0; i < b.N; i++ {
		timed, _, err := timing.AddTimingOrder(g, "LDTACK-", "DSr+")
		if err != nil {
			b.Fatal(err)
		}
		timed, _, err = timing.Retrigger(timed, "LDS-", "D-", "DSr-")
		if err != nil {
			b.Fatal(err)
		}
		sg, err := reach.BuildSG(timed, reach.Options{})
		if err != nil || !sg.HasCSC() {
			b.Fatal("Fig 11c CSC")
		}
		if _, err := logic.Synthesize(sg, logic.ComplexGate); err != nil {
			b.Fatal(err)
		}
	}
}

// E-F11b — exact time-separation analysis on the READ cycle.
func BenchmarkTSE(b *testing.B) {
	g := vme.ReadSTG()
	delays := make([]timing.Delay, len(g.Net.Transitions))
	for i := range delays {
		delays[i] = timing.Fixed(1)
	}
	delays[g.Net.TransitionIndex("DSr+")] = timing.Delay{Min: 50, Max: 60}
	delays[g.Net.TransitionIndex("LDS-")] = timing.Delay{Min: 1, Max: 3}
	s := timing.Spec{G: g, Delays: delays}
	from := timing.Occurrence{Transition: g.Net.TransitionIndex("LDTACK-"), Cycle: 2}
	to := timing.Occurrence{Transition: g.Net.TransitionIndex("DSr+"), Cycle: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.MaxSeparation(s, from, to, 4, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// E-SYM — explicit vs symbolic reachability over concurrency depth: the
// crossover of Section 2.2.
func BenchmarkSymbolicVsExplicit(b *testing.B) {
	for _, n := range []int{4, 8, 12, 16} {
		net := gen.IndependentToggles(n)
		b.Run(fmt.Sprintf("explicit/toggles-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rg, err := reach.Explore(net, reach.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rg.NumStates()), "states")
			}
		})
		b.Run(fmt.Sprintf("symbolic/toggles-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := symbolic.Reach(net)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Count, "states")
				b.ReportMetric(float64(res.PeakNodes), "bddnodes")
			}
		})
	}
	for _, n := range []int{3, 5, 7} {
		g := gen.MullerPipeline(n)
		b.Run(fmt.Sprintf("explicit/muller-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rg, err := reach.Explore(g.Net, reach.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rg.NumStates()), "states")
			}
		})
		b.Run(fmt.Sprintf("symbolic/muller-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := symbolic.Reach(g.Net)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Count, "states")
			}
		})
	}
}

// BDD-KERNEL — the symbolic kernel's operating points on the two scaling
// families: default settings, aggressive garbage collection (threshold 1
// forces a collect-and-adapt cycle every iteration), and dynamic variable
// reordering. Peak live nodes is the memory trajectory; the wall-clock
// column is the throughput one.
func BenchmarkSymbolicKernel(b *testing.B) {
	models := []struct {
		name string
		net  *petri.Net
	}{
		{"toggles-12", gen.IndependentToggles(12)},
		{"toggles-16", gen.IndependentToggles(16)},
		{"muller-5", gen.MullerPipeline(5).Net},
		{"muller-7", gen.MullerPipeline(7).Net},
	}
	modes := []struct {
		name string
		opts symbolic.Options
	}{
		{"default", symbolic.Options{}},
		{"gc", symbolic.Options{GCThreshold: 1}},
		{"sift", symbolic.Options{Sift: true}},
	}
	for _, mdl := range models {
		for _, mode := range modes {
			b.Run(mdl.name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := symbolic.ReachOpts(mdl.net, mode.opts)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.PeakNodes), "peaknodes")
					b.ReportMetric(res.Stats.CacheHitRate()*100, "cachehit%")
				}
			})
		}
	}
}

// SYM-PAR — parallel symbolic image computation: the same fixpoint, bit
// for bit, at 1/2/4 image workers (w1 is the sequential kernel). The
// contention metrics — unique-table CAS retries, leaked arena slots,
// epoch re-runs — quantify what the lock-free section pays for its
// speedup; scripts/bench.sh sweeps this family across GOMAXPROCS.
func BenchmarkSymbolicParallel(b *testing.B) {
	models := []struct {
		name string
		net  *petri.Net
	}{
		{"toggles-16", gen.IndependentToggles(16)},
		{"muller-7", gen.MullerPipeline(7).Net},
	}
	for _, mdl := range models {
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/w%d", mdl.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := symbolic.ReachOpts(mdl.net, symbolic.Options{Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.PeakNodes), "peaknodes")
					b.ReportMetric(float64(res.Stats.CASRetries), "casretries")
					b.ReportMetric(float64(res.Stats.Leaked), "leaked")
					b.ReportMetric(float64(res.Stats.EpochRetries), "epochretries")
				}
			})
		}
	}
}

// E-PAR — parallel sharded explicit reachability: the same graph, bit for
// bit, at 1/2/4/8 workers, with wall-clock speedup on multi-core hosts.
// pipeline-8 has 92736 states (≥ 2^16); ring and philosophers calibrate
// the work-stealing overhead on smaller spaces.
func BenchmarkParallelExplore(b *testing.B) {
	models := []struct {
		name string
		net  *petri.Net
	}{
		{"pipeline-8", gen.MullerPipeline(8).Net},
		{"ring-12-6", gen.MarkedGraphRing(12, 6)},
		{"phil-7", gen.Philosophers(7)},
	}
	for _, mdl := range models {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/w%d", mdl.name, w), func(b *testing.B) {
				var steals, casRetries int64
				for i := 0; i < b.N; i++ {
					reg := obs.NewRegistry()
					root := reg.Root("bench:parallel-explore")
					rg, err := reach.Explore(mdl.net, reach.Options{Workers: w, Obs: root})
					if err != nil {
						b.Fatal(err)
					}
					root.End()
					snap := reg.Snapshot()
					steals += snap.Counters["reach.steals"]
					casRetries += snap.Counters["reach.cas_retries"]
					b.ReportMetric(float64(rg.NumStates()), "states")
				}
				b.ReportMetric(float64(steals)/float64(b.N), "steals")
				b.ReportMetric(float64(casRetries)/float64(b.N), "casretries")
			})
		}
	}
}

// E-UNF — unfolding prefix vs reachability graph size.
func BenchmarkUnfoldingVsRG(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		net := gen.IndependentToggles(n)
		b.Run(fmt.Sprintf("toggles-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u, err := unfold.Build(net, unfold.Options{})
				if err != nil {
					b.Fatal(err)
				}
				_, events, _ := u.Stats()
				b.ReportMetric(float64(events), "events")
			}
		})
	}
}

// E-POR — stubborn-set reduction factors.
func BenchmarkStubbornReduction(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		net := gen.IndependentToggles(n)
		b.Run(fmt.Sprintf("toggles-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := stubborn.Explore(net, stubborn.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
	for _, n := range []int{4, 6} {
		net := gen.Philosophers(n)
		b.Run(fmt.Sprintf("phil-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := stubborn.Explore(net, stubborn.Options{})
				if err != nil || len(res.Deadlocks) == 0 {
					b.Fatal("deadlock must be found")
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
}

// E-BM — burst-mode synthesis with hazard-free two-level minimization.
func BenchmarkBurstModeSynth(b *testing.B) {
	m := burstmode.NewMachine("dma-grant",
		[]string{"req", "dav", "abort"},
		[]string{"grant", "busy"})
	s0 := m.AddState()
	s1 := m.AddState()
	s2 := m.AddState()
	m.AddArc(s0, []burstmode.Edge{{Sig: 0, Rise: true}, {Sig: 1, Rise: true}},
		[]burstmode.Edge{{Sig: 0, Rise: true}}, s1)
	m.AddArc(s1, []burstmode.Edge{{Sig: 0, Rise: false}, {Sig: 1, Rise: false}},
		[]burstmode.Edge{{Sig: 0, Rise: false}}, s0)
	m.AddArc(s0, []burstmode.Edge{{Sig: 2, Rise: true}},
		[]burstmode.Edge{{Sig: 1, Rise: true}}, s2)
	m.AddArc(s2, []burstmode.Edge{{Sig: 2, Rise: false}},
		[]burstmode.Edge{{Sig: 1, Rise: false}}, s0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := burstmode.Synthesize(m); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end flow benchmark: spec to verified netlist.
func BenchmarkFullFlow(b *testing.B) {
	for _, tc := range []struct {
		name string
		g    *stg.STG
	}{
		{"vme-read", vme.ReadSTG()},
		{"vme-read-write", vme.ReadWriteSTG()},
	} {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/w%d", tc.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rep, err := core.Synthesize(tc.g, core.Options{Workers: w})
					if err != nil || !rep.Verification.OK() {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// E-SERVE — service-layer latency through the full HTTP/JSON path: a cold
// synthesize runs the engines on every request (cache disabled), a cached
// one replays the content-addressed result. The gap is the price of the
// flow itself versus the daemon overhead (routing, JSON, cache lookup).
func BenchmarkServeSynthesize(b *testing.B) {
	spec, err := os.ReadFile("testdata/vme-read.g")
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{"spec": string(spec)})
	if err != nil {
		b.Fatal(err)
	}
	post := func(b *testing.B, url string, wantCached bool) {
		resp, err := http.Post(url+"/v1/synthesize", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out serve.Response
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || out.Status != "done" {
			b.Fatalf("synthesize: %d %q %q (%v)", resp.StatusCode, out.Status, out.Error, err)
		}
		if out.Cached != wantCached {
			b.Fatalf("cached = %v, want %v", out.Cached, wantCached)
		}
	}
	newBenchServer := func(b *testing.B, cfg serve.Config) *httptest.Server {
		srv, err := serve.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(ts.Close)
		return ts
	}
	b.Run("cold", func(b *testing.B) {
		ts := newBenchServer(b, serve.Config{CacheEntries: -1}) // cache disabled
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL, false)
		}
	})
	b.Run("cached", func(b *testing.B) {
		ts := newBenchServer(b, serve.Config{})
		post(b, ts.URL, false) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL, true)
		}
	})
	// Durable variants isolate the write-ahead-journal overhead: cold-durable
	// adds an fsync'd accept/start/finish record set per run (vs cold),
	// cached-durable shows the warm path is journal-free (vs cached).
	b.Run("cold-durable", func(b *testing.B) {
		ts := newBenchServer(b, serve.Config{CacheEntries: -1, DataDir: b.TempDir()})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL, false)
		}
	})
	b.Run("cached-durable", func(b *testing.B) {
		ts := newBenchServer(b, serve.Config{DataDir: b.TempDir()})
		post(b, ts.URL, false) // prime both cache tiers
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL, true)
		}
	})
	// disk-hit measures the persisted path: every iteration runs against a
	// freshly restarted server (cold memory tier, warm disk tier), so the
	// timed request reads, verifies and promotes the on-disk entry.
	b.Run("disk-hit", func(b *testing.B) {
		dir := b.TempDir()
		prime, err := serve.New(serve.Config{DataDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		pts := httptest.NewServer(prime.Handler())
		post(b, pts.URL, false) // prime the disk tier
		pts.Close()
		if err := prime.Shutdown(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv, err := serve.New(serve.Config{DataDir: dir})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			b.StartTimer()
			post(b, ts.URL, true) // disk hit on a cold memory tier
			b.StopTimer()
			ts.Close()
			srv.Shutdown(context.Background())
			b.StartTimer()
		}
	})
}

// E-PROP — temporal-property checking: the Standard() implementability
// suite re-derived through the general checker, explicit (with a worker
// sweep) vs symbolic, on the paper's READ cycle and a concurrency-heavy
// Muller pipeline.
func BenchmarkPropCheck(b *testing.B) {
	models := []struct {
		name string
		g    *stg.STG
	}{
		{"vme-read", vme.ReadSTG()},
		{"muller-5", gen.MullerPipeline(5)},
	}
	props := prop.Standard()
	for _, mdl := range models {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/explicit/w%d", mdl.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rep, err := prop.Check(mdl.g, props, prop.Options{
						Engine: prop.EngineExplicit, Workers: w,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(len(rep.Verdicts)), "props")
				}
			})
		}
		b.Run(mdl.name+"/symbolic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prop.Check(mdl.g, props, prop.Options{Engine: prop.EngineSymbolic}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E-CONF — STG-level trace conformance (implementation verification, §2.1).
func BenchmarkConformance(b *testing.B) {
	g := vme.ReadSTG()
	impl, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		viol, err := sim.ConformsSTG(impl, g, 0)
		if err != nil || len(viol) != 0 {
			b.Fatal("conformance must hold")
		}
	}
}

// E-BOUND — boundedness with covering witness (§2.1 property #1).
func BenchmarkBoundedness(b *testing.B) {
	net := vme.ReadWriteSTG().Net
	for i := 0; i < b.N; i++ {
		res, err := reach.CheckBounded(net, 0)
		if err != nil || !res.Bounded {
			b.Fatal("read/write net is bounded")
		}
	}
}

// E-SYMDEAD — fully symbolic deadlock detection (§2.2).
func BenchmarkSymbolicDeadlock(b *testing.B) {
	net := gen.Philosophers(5)
	for i := 0; i < b.N; i++ {
		res, err := symbolic.Reach(net)
		if err != nil {
			b.Fatal(err)
		}
		if _, dead := symbolic.DeadStates(net, res); dead == 0 {
			b.Fatal("philosophers must deadlock")
		}
	}
}

// Substrate microbenchmarks.
func BenchmarkBoolminQMC(b *testing.B) {
	on := []uint64{4, 8, 10, 11, 12, 15, 3, 7}
	dc := []uint64{9, 14, 1}
	for i := 0; i < b.N; i++ {
		boolmin.Minimize(on, dc, 4)
	}
}

func BenchmarkTokenGame(b *testing.B) {
	g := vme.ReadSTG()
	n := g.Net
	m := n.InitialMarking()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range n.EnabledList(m) {
			next := n.Fire(m, t)
			_ = next
			break
		}
	}
}
