.model vme-read-write
.inputs DSr DSw LDTACK
.outputs DTACK LDS D
.graph
DSr+ LDS+
DSw+ D+/1
LDS+ LDTACK+
LDTACK+ D+
D+ DTACK+
DTACK+ DSr-
DSr- D-
D- p1 p3
D+/1 LDS+/1
LDS+/1 LDTACK+/1
LDTACK+/1 D-/1
D-/1 DTACK+/1
DTACK+/1 DSw-
DSw- p1 p3
LDS- LDTACK-
LDTACK- p2
DTACK- p0
p0 DSr+ DSw+
p2 LDS+ LDS+/1
p1 LDS-
p3 DTACK-
.marking { p0 p2 }
.end
