.model vme-read
.inputs DSr LDTACK
.outputs DTACK LDS D
.graph
DSr+ LDS+
LDS+ LDTACK+
LDTACK+ D+
D+ DTACK+
DTACK+ DSr-
DSr- D-
D- DTACK- LDS-
DTACK- DSr+
LDS- LDTACK-
LDTACK- LDS+
.marking { <DTACK-,DSr+> <LDTACK-,LDS+> }
.end
