.model pipeline-stage
.inputs Rin Aout
.outputs Ain Rout
.graph
Rin+ Rout+
Rout+ Ain+ Aout+
Ain+ Rin-
Rin- Rout-
Aout+ Rout-
Rout- Ain- Aout-
Ain- Rin+
Aout- Rout+
.marking { <Ain-,Rin+> <Aout-,Rout+> }
.end
