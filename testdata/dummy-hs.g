.model dummy-hs
.inputs req
.outputs ack
.dummy sync
.graph
req+ sync
sync ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
