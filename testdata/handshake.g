.model handshake
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
