# Mutual-exclusion variant of examples/arbiter with the arbitration
# removed: two independent request/grant handshakes that can both be
# granted at once. Implementable on its own (each grant simply follows
# its request), but it violates the mutual-exclusion property
#
#	prop mutex : AG !(g1 & g2)
#
# making it the canonical violating model for counterexample traces.
.model arbiter-race
.inputs r1 r2
.outputs g1 g2
.graph
r1+ g1+
g1+ r1-
r1- g1-
g1- r1+
r2+ g2+
g2+ r2-
r2- g2-
g2- r2+
.marking { <g1-,r1+> <g2-,r2+> }
.end
