.model fork-join
.inputs go
.outputs o1 o2 done
.graph
go+ o1+ o2+
o1+ done+
o2+ done+
done+ go-
go- o1- o2-
o1- done-
o2- done-
done- go+
.marking { <done-,go+> }
.end
