# Two dining philosophers as an STG: a and b each raise while holding
# both forks and lower to release them, but they pick the forks up in
# opposite orders (a takes f1 at a+, needs f2 for a-; b takes f2 at b+,
# needs f1 for b-). After a+ b+ both hold one fork and wait for the
# other: a reachable deadlock, so
#
#	prop no_deadlock : deadlock_free
#
# is violated. The spec is 1-safe and consistent but not persistent
# (a+ and b+ disable each other's lowering), so synthesis skips it.
.model phil-deadlock
.outputs a b
.graph
p_ra a+
p_f1 a+
a+ p_ha
p_ha a-
p_f2 a-
a- p_ra p_f1 p_f2
p_rb b+
p_f2 b+
b+ p_hb
p_hb b-
p_f1 b-
b- p_rb p_f1 p_f2
.marking { p_ra p_rb p_f1 p_f2 }
.end
