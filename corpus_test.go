package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
)

// TestCorpusFullFlow runs the complete flow on every specification in
// testdata/: parse, analyze, encode, synthesize in all three architectures,
// verify. This is the breadth test a downstream adopter cares about: the
// flow works on controllers beyond the paper's running example.
func TestCorpusFullFlow(t *testing.T) {
	files, err := filepath.Glob("testdata/*.g")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			g, err := stg.ParseG(f)
			if err != nil {
				t.Fatal(err)
			}
			sg, err := reach.BuildSG(g, reach.Options{})
			if err != nil {
				t.Fatal(err)
			}
			imp := sg.CheckImplementability()
			if !imp.Persistent {
				t.Skipf("%s needs arbitration; covered by the mutex tests", g.Name())
			}
			for _, style := range []logic.Style{logic.ComplexGate, logic.GeneralizedC, logic.StandardC} {
				rep, err := core.Synthesize(g, core.Options{Style: style})
				if err != nil {
					t.Fatalf("style %v: %v", style, err)
				}
				if !rep.Verification.OK() {
					t.Fatalf("style %v: %v", style, rep.Verification.Violations)
				}
			}
			// Complex-gate circuits also round-trip through the verifier's
			// state-graph extraction.
			rep, err := core.Synthesize(g, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.StateGraph(rep.Netlist, rep.Spec, sim.Options{}); err != nil {
				t.Fatalf("implementation SG: %v", err)
			}
		})
	}
}

// TestCorpusRoundTripG: parse -> write -> parse is stable for every corpus
// file.
func TestCorpusRoundTripG(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.g")
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		g, err := stg.ParseG(strings.NewReader(string(data)))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var buf strings.Builder
		if err := g.WriteG(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := stg.ParseG(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("%s: reparse: %v", path, err)
		}
		var buf2 strings.Builder
		if err := g2.WriteG(&buf2); err != nil {
			t.Fatal(err)
		}
		if buf.String() != buf2.String() {
			t.Fatalf("%s: write/parse/write unstable", path)
		}
	}
}
