// Package repro's root tests are the figure-level acceptance suite: one test
// per paper artifact, asserting the *shape* results recorded in
// EXPERIMENTS.md. Package-level tests cover the same ground in more depth;
// these are the single-file summary a reviewer can read top to bottom.
package repro

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/structural"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/techmap"
	"repro/internal/timing"
	"repro/internal/unfold"
	"repro/internal/vme"
)

// E-F2/3: the waveform compiles to the Figure 3 marked graph.
func TestPaperFig3(t *testing.T) {
	g, err := stg.FromWaveform(vme.ReadWaveform())
	if err != nil {
		t.Fatal(err)
	}
	if !g.Net.IsMarkedGraph() || !g.Net.StronglyConnected() {
		t.Fatal("Fig 3 is a strongly connected marked graph")
	}
	if got := len(g.Net.Transitions); got != 10 {
		t.Fatalf("10 signal transitions, got %d", got)
	}
	if g.Net.InitialMarking().Tokens() != 2 {
		t.Fatal("two initial tokens")
	}
}

// E-F4: 14 states, one CSC conflict pair at code 10110.
func TestPaperFig4(t *testing.T) {
	sg, err := reach.BuildSG(vme.ReadSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumStates() != 14 || sg.DistinctCodes() != 13 {
		t.Fatalf("states=%d codes=%d, want 14/13", sg.NumStates(), sg.DistinctCodes())
	}
	confl := sg.CSCConflicts()
	if len(confl) != 1 {
		t.Fatalf("one CSC conflict, got %d", len(confl))
	}
	code := ""
	for _, name := range vme.SignalOrder {
		if confl[0].Code.Bit(sg.SignalIndex(name)) {
			code += "1"
		} else {
			code += "0"
		}
	}
	if code != "10110" {
		t.Fatalf("conflict code %s, want 10110", code)
	}
}

// E-F5: read/write choice structure.
func TestPaperFig5(t *testing.T) {
	g := vme.ReadWriteSTG()
	if len(g.Net.ChoicePlaces()) != 2 {
		t.Fatal("two choice places")
	}
	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Out[sg.Initial]) != 2 {
		t.Fatal("initial read/write choice")
	}
}

// E-F6: reductions, SM cover, exact invariant approximation, dense encoding.
func TestPaperFig6(t *testing.T) {
	g := vme.ReadWriteSTG()
	reduced, _ := structural.Reduce(g.Net)
	if len(reduced.Transitions) >= len(g.Net.Transitions) {
		t.Fatal("reduction must shrink the net")
	}
	cover, ok := structural.SMCover(reduced)
	if !ok || len(cover) != 2 {
		t.Fatalf("2-component SM cover, got %d (ok=%v)", len(cover), ok)
	}
	sym, err := symbolic.Reach(reduced)
	if err != nil {
		t.Fatal(err)
	}
	approx, _, err := symbolic.InvariantApprox(reduced, sym.M)
	if err != nil {
		t.Fatal(err)
	}
	if approx != sym.States {
		t.Fatal("invariant conjunction must be exact on the reduced net")
	}
	d, err := symbolic.NewDense(reduced)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bits() >= len(reduced.Places) {
		t.Fatal("dense encoding must use fewer variables than places")
	}
}

// E-F7: csc0 insertion restores all implementability properties.
func TestPaperFig7(t *testing.T) {
	g := vme.ReadSTG()
	g2, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := reach.BuildSG(g2, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sg.CheckImplementability().OK() {
		t.Fatal("Fig 7 SG must be implementable")
	}
}

// E-EQ: the synthesized equations equal the paper's on the reachable set.
func TestPaperEquations(t *testing.T) {
	g := vme.ReadSTG()
	g2, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := reach.BuildSG(g2, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(sg.Signals))
	for i, s := range sg.Signals {
		names[i] = s.Name
	}
	for _, eq := range vme.PaperReadEquations() {
		idx := nl.SignalIndex(eq.Signal)
		for s := range sg.States {
			code := uint64(sg.States[s].Code)
			env := map[string]bool{}
			for i, n := range names {
				env[n] = code&(1<<uint(i)) != 0
			}
			if nl.Next(code, idx) != eq.Eval(env) {
				t.Fatalf("%s deviates from the paper at %s", eq.Signal,
					sg.States[s].Code.String(len(names)))
			}
		}
	}
}

// E-F8: all three architectures verify speed-independent.
func TestPaperFig8(t *testing.T) {
	for _, style := range []logic.Style{logic.ComplexGate, logic.GeneralizedC, logic.StandardC} {
		rep, err := core.Synthesize(vme.ReadSTG(), core.Options{Style: style})
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		if !rep.Verification.OK() {
			t.Fatalf("%v: not SI", style)
		}
	}
}

// E-F9: two-input mapping succeeds and the hazardous single-acknowledgment
// variant is rejected by the verifier (detailed construction in sim tests).
func TestPaperFig9(t *testing.T) {
	g := vme.ReadSTG()
	spec, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := techmap.Map(nl, spec, techmap.Options{MaxFanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mapped.MaxFanIn() > 2 {
		t.Fatal("fan-in budget missed")
	}
	res, err := sim.Verify(mapped, spec, sim.Options{})
	if err != nil || !res.OK() {
		t.Fatalf("mapped circuit must be SI: %v %v", err, res)
	}
}

// E-F10: back-annotation round trip of the implementation state graph.
func TestPaperFig10(t *testing.T) {
	g := vme.ReadSTG()
	spec, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	implSG, err := sim.StateGraph(nl, spec, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := regions.Synthesize(implSG)
	if err != nil {
		t.Fatal(err)
	}
	sg2, err := reach.BuildSG(back, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg2.NumStates() != implSG.NumStates() {
		t.Fatalf("round trip %d -> %d states", implSG.NumStates(), sg2.NumStates())
	}
}

// E-F11: timing assumptions remove the state signal and shrink the logic.
func TestPaperFig11(t *testing.T) {
	g := vme.ReadSTG()
	sol, err := encoding.SolveCSC(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := logic.Synthesize(sol.SG, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	timed, _, err := timing.AddTimingOrder(g, "LDTACK-", "DSr+")
	if err != nil {
		t.Fatal(err)
	}
	timed, cons, err := timing.Retrigger(timed, "LDS-", "D-", "DSr-")
	if err != nil {
		t.Fatal(err)
	}
	sgC, err := reach.BuildSG(timed, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sgC.HasCSC() {
		t.Fatal("Fig 11c: CSC must hold without insertion")
	}
	nl, err := logic.Synthesize(sgC, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	if nl.LiteralCount() >= baseline.LiteralCount() {
		t.Fatalf("timed %d literals must beat untimed %d",
			nl.LiteralCount(), baseline.LiteralCount())
	}
	if !strings.Contains(nl.Equations(), "LDS = DSr") {
		t.Fatalf("Fig 11c shape: LDS = DSr expected:\n%s", nl.Equations())
	}
	res, err := sim.Verify(nl, timed, sim.Options{Constraints: []sim.RelativeOrder{cons}})
	if err != nil || !res.OK() {
		t.Fatalf("Fig 11c circuit must verify: %v %v", err, res)
	}
}

// E-SYM: symbolic counts equal explicit counts on every family.
func TestPaperSymbolic(t *testing.T) {
	// All nets here are safe: the symbolic engine uses 1-safe (no contact)
	// firing semantics, which coincides with counting semantics exactly on
	// safe nets.
	nets := map[string]*petri.Net{
		"toggles-8": gen.IndependentToggles(8),
		"muller-4":  gen.MullerPipeline(4).Net,
		"vme-rw":    vme.ReadWriteSTG().Net,
		"phil-3":    gen.Philosophers(3),
		"ring-6-1":  gen.MarkedGraphRing(6, 1),
	}
	for name, net := range nets {
		exp, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sym, err := symbolic.Reach(net)
		if err != nil {
			t.Fatal(err)
		}
		if float64(exp.NumStates()) != sym.Count {
			t.Fatalf("%s: explicit %d vs symbolic %v", name, exp.NumStates(), sym.Count)
		}
	}
}

// E-UNF/E-POR: prefix and stubborn exploration stay polynomial where the
// reachability graph explodes.
func TestPaperReductions(t *testing.T) {
	net := gen.IndependentToggles(12) // 4096 explicit states
	u, err := unfold.Build(net, unfold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, events, _ := u.Stats()
	if events > 48 {
		t.Fatalf("prefix events %d, want O(n)", events)
	}
	st, err := stubborn.Explore(net, stubborn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.States > 100 {
		t.Fatalf("stubborn states %d, want far below 4096", st.States)
	}
}
